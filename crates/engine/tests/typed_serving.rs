//! End-to-end typed serving: `TypedTable<f64>` and `TypedTable<String>`
//! (string-prefix) columns served through the shard-parallel executor,
//! with property-test oracles asserting exactness **at every refinement
//! stage** — cold, mid-refinement, converged, and re-converged after
//! mutations — against sorted-`Vec` ground truth in the key domain.

use std::cmp::Ordering;
use std::sync::Arc;

use proptest::prelude::*;

use pi_core::budget::BudgetPolicy;
use pi_engine::typed::{TypedColumnSpec, TypedExecutor, TypedMutation, TypedQuery, TypedTable};
use pi_engine::{EngineError, ExecutorConfig};
use pi_workloads::domains;
use pi_workloads::Distribution;

/// Small foreground-only executor so tests control refinement progress.
fn foreground() -> ExecutorConfig {
    ExecutorConfig {
        worker_threads: 2,
        maintenance_steps: 2,
        background_maintenance: false,
    }
}

/// Ground truth for float queries: filter by IEEE total order (ties with
/// the encoding's policy because tests only use the canonical NaN).
fn float_oracle(keys: &[f64], low: f64, high: f64) -> u64 {
    keys.iter()
        .filter(|k| k.total_cmp(&low) != Ordering::Less && k.total_cmp(&high) != Ordering::Greater)
        .count() as u64
}

/// Ground truth for string queries: full byte order.
fn string_oracle(keys: &[String], low: &str, high: &str) -> u64 {
    keys.iter()
        .filter(|k| k.as_str() >= low && k.as_str() <= high)
        .count() as u64
}

/// An f64 from arbitrary bits: the full IEEE space — subnormals, ±0.0,
/// ±inf — with every NaN canonicalised (the encoding's policy, so the
/// `total_cmp` oracle agrees).
fn float_from_bits(bits: u64) -> f64 {
    let v = f64::from_bits(bits);
    if v.is_nan() {
        f64::NAN
    } else {
        v
    }
}

#[test]
fn float_table_serves_skewed_streams_exactly_through_convergence() {
    let keys = domains::float_data(Distribution::Skewed, 30_000, 1_000.0, 41);
    let table = Arc::new(
        TypedTable::builder()
            .column(
                TypedColumnSpec::new("x", keys.clone())
                    .with_shards(4)
                    .with_policy(BudgetPolicy::FixedDelta(0.25)),
            )
            .build(),
    );
    let executor = TypedExecutor::with_config(Arc::clone(&table), foreground());
    let queries = domains::float_ranges(120, 1_000.0, 0.02, 42);
    // Serve in batches while the shards refine; every answer must be
    // exact at whatever stage the index happens to be in.
    for chunk in queries.chunks(10) {
        let batch: Vec<TypedQuery<f64>> = chunk
            .iter()
            .map(|&(low, high)| TypedQuery::new("x", low, high))
            .collect();
        let results = executor.execute_batch(&batch).unwrap();
        for (&(low, high), r) in chunk.iter().zip(&results) {
            assert_eq!(r.count, float_oracle(&keys, low, high), "[{low}, {high}]");
            assert_eq!(r.sum, None, "float SUM must stay gated off");
        }
    }
    executor.drive_to_convergence(usize::MAX);
    assert!(table.inner().is_converged());
    let (low, high) = queries[0];
    let r = executor.execute_one("x", low, high).unwrap();
    assert_eq!(r.count, float_oracle(&keys, low, high));
}

#[test]
fn string_table_serves_hot_prefix_streams_exactly_through_convergence() {
    // Skewed strings: 90% of rows share one 10-byte prefix, so 90% of
    // the rows share one *code* — queries into the hot set lean entirely
    // on the tie-break path.
    let keys = domains::string_data(Distribution::Skewed, 8_000, 43);
    let table = Arc::new(
        TypedTable::builder()
            .column(
                TypedColumnSpec::new("s", keys.clone())
                    .with_shards(4)
                    .with_policy(BudgetPolicy::FixedDelta(0.25)),
            )
            .build(),
    );
    let executor = TypedExecutor::with_config(Arc::clone(&table), foreground());
    let queries = domains::string_ranges(Distribution::Skewed, 80, 44);
    for chunk in queries.chunks(8) {
        let batch: Vec<TypedQuery<String>> = chunk
            .iter()
            .map(|(low, high)| TypedQuery::new("s", low.clone(), high.clone()))
            .collect();
        let results = executor.execute_batch(&batch).unwrap();
        for ((low, high), r) in chunk.iter().zip(&results) {
            assert_eq!(
                r.count,
                string_oracle(&keys, low, high),
                "[{low:?}, {high:?}]"
            );
            assert_eq!(r.sum, None, "string SUM must stay gated off");
        }
    }
    executor.drive_to_convergence(usize::MAX);
    assert!(table.inner().is_converged());
    let (low, high) = &queries[0];
    let r = executor
        .execute_one("s", low.clone(), high.clone())
        .unwrap();
    assert_eq!(r.count, string_oracle(&keys, low, high));
}

#[test]
fn typed_unknown_column_fails_the_batch() {
    let table = Arc::new(
        TypedTable::builder()
            .column(TypedColumnSpec::new("x", vec![1.0f64, 2.0]))
            .build(),
    );
    let executor = TypedExecutor::with_config(table, foreground());
    let err = executor
        .execute_batch(&[TypedQuery::new("nope", 0.0, 1.0)])
        .unwrap_err();
    assert_eq!(err, EngineError::UnknownColumn("nope".into()));
    // An inverted (typed-empty) range must not mask the unknown column:
    // name resolution happens before the empty-range short-circuit.
    let err = executor
        .execute_batch(&[TypedQuery::new("nope", 1.0, 0.0)])
        .unwrap_err();
    assert_eq!(err, EngineError::UnknownColumn("nope".into()));
    let err = executor
        .apply_mutations("nope", &[TypedMutation::Insert(1.0)])
        .unwrap_err();
    assert_eq!(err, EngineError::UnknownColumn("nope".into()));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary float columns over the full IEEE space (NaN, ±0.0,
    /// subnormals, ±inf included) served through the executor: COUNT is
    /// exact at an arbitrary refinement stage, after convergence, and
    /// after a mutation burst re-opens maintenance.
    #[test]
    fn float_counts_exact_at_every_stage(
        bits in prop::collection::vec(any::<u64>(), 10..300),
        query_bits in prop::collection::vec((any::<u64>(), any::<u64>()), 1..20),
        shards in 1..5usize,
        muts in prop::collection::vec((0..3u64, any::<u64>()), 0..30),
        warmup_batches in 0..4usize,
    ) {
        let mut keys: Vec<f64> = bits.iter().map(|&b| float_from_bits(b)).collect();
        let table = Arc::new(
            TypedTable::builder()
                .column(
                    TypedColumnSpec::new("x", keys.clone())
                        .with_shards(shards)
                        .with_policy(BudgetPolicy::FixedDelta(0.5)),
                )
                .build(),
        );
        let executor = TypedExecutor::with_config(Arc::clone(&table), foreground());
        let queries: Vec<(f64, f64)> = query_bits
            .iter()
            .map(|&(a, b)| {
                let (x, y) = (float_from_bits(a), float_from_bits(b));
                if x.total_cmp(&y) == Ordering::Greater { (y, x) } else { (x, y) }
            })
            .collect();
        let batch: Vec<TypedQuery<f64>> = queries
            .iter()
            .map(|&(low, high)| TypedQuery::new("x", low, high))
            .collect();

        // Partially refine: an arbitrary number of serving batches.
        for _ in 0..warmup_batches {
            let results = executor.execute_batch(&batch).unwrap();
            for (&(low, high), r) in queries.iter().zip(&results) {
                prop_assert_eq!(r.count, float_oracle(&keys, low, high), "warm [{}, {}]", low, high);
            }
        }

        // Mutations against a replay oracle (delete/update validated).
        let typed_muts: Vec<TypedMutation<f64>> = muts
            .iter()
            .map(|&(tag, b)| match tag {
                0 => TypedMutation::Insert(float_from_bits(b)),
                1 => TypedMutation::Delete(float_from_bits(b)),
                _ => TypedMutation::Update { old: float_from_bits(b), new: float_from_bits(b ^ 0xff) },
            })
            .collect();
        let applied = executor.apply_mutations("x", &typed_muts).unwrap();
        for (m, &ok) in typed_muts.iter().zip(&applied) {
            let want = match m {
                TypedMutation::Insert(v) => { keys.push(*v); true }
                TypedMutation::Delete(v) => match keys.iter().position(|k| k.total_cmp(v) == Ordering::Equal) {
                    Some(at) => { keys.remove(at); true }
                    None => false,
                },
                TypedMutation::Update { old, new } => match keys.iter().position(|k| k.total_cmp(old) == Ordering::Equal) {
                    Some(at) => { keys.remove(at); keys.push(*new); true }
                    None => false,
                },
            };
            prop_assert_eq!(ok, want, "{:?}", m);
        }

        // Exact right after the writes, and after re-convergence.
        for stage in 0..2 {
            let results = executor.execute_batch(&batch).unwrap();
            for (&(low, high), r) in queries.iter().zip(&results) {
                prop_assert_eq!(
                    r.count,
                    float_oracle(&keys, low, high),
                    "stage {} [{}, {}]", stage, low, high
                );
            }
            executor.drive_to_convergence(1_000_000);
            prop_assert!(table.inner().is_converged());
        }
    }

    /// Arbitrary byte-string columns (non-ASCII bytes, empty strings,
    /// interior NULs, shared prefixes) served through the executor:
    /// COUNT under full-string order is exact at every stage, with
    /// boundary ties broken against the side table.
    #[test]
    fn string_counts_exact_at_every_stage(
        raw in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..12), 5..150),
        query_raw in prop::collection::vec(
            (prop::collection::vec(any::<u8>(), 0..12), prop::collection::vec(any::<u8>(), 0..12)),
            1..15,
        ),
        shards in 1..4usize,
        muts in prop::collection::vec((0..3u64, prop::collection::vec(any::<u8>(), 0..12)), 0..25),
    ) {
        // Lossy-map arbitrary bytes into strings: keeps non-ASCII
        // multi-byte sequences and control characters in play while
        // staying valid UTF-8.
        let to_string = |b: &Vec<u8>| String::from_utf8_lossy(b).into_owned();
        let mut keys: Vec<String> = raw.iter().map(to_string).collect();
        let table = Arc::new(
            TypedTable::builder()
                .column(
                    TypedColumnSpec::new("s", keys.clone())
                        .with_shards(shards)
                        .with_policy(BudgetPolicy::FixedDelta(0.5)),
                )
                .build(),
        );
        let executor = TypedExecutor::with_config(Arc::clone(&table), foreground());
        let queries: Vec<(String, String)> = query_raw
            .iter()
            .map(|(a, b)| {
                let (x, y) = (to_string(a), to_string(b));
                if x <= y { (x, y) } else { (y, x) }
            })
            .collect();
        let batch: Vec<TypedQuery<String>> = queries
            .iter()
            .map(|(low, high)| TypedQuery::new("s", low.clone(), high.clone()))
            .collect();

        // Cold, then mutated, then converged.
        let results = executor.execute_batch(&batch).unwrap();
        for ((low, high), r) in queries.iter().zip(&results) {
            prop_assert_eq!(r.count, string_oracle(&keys, low, high), "cold [{:?}, {:?}]", low, high);
        }

        let typed_muts: Vec<TypedMutation<String>> = muts
            .iter()
            .map(|(tag, b)| match tag {
                0 => TypedMutation::Insert(to_string(b)),
                1 => TypedMutation::Delete(to_string(b)),
                _ => TypedMutation::Update { old: to_string(b), new: format!("{}!", to_string(b)) },
            })
            .collect();
        let applied = executor.apply_mutations("s", &typed_muts).unwrap();
        for (m, &ok) in typed_muts.iter().zip(&applied) {
            let want = match m {
                TypedMutation::Insert(v) => { keys.push(v.clone()); true }
                TypedMutation::Delete(v) => match keys.iter().position(|k| k == v) {
                    Some(at) => { keys.remove(at); true }
                    None => false,
                },
                TypedMutation::Update { old, new } => match keys.iter().position(|k| k == old) {
                    Some(at) => { keys.remove(at); keys.push(new.clone()); true }
                    None => false,
                },
            };
            prop_assert_eq!(ok, want, "{:?}", m);
        }

        let results = executor.execute_batch(&batch).unwrap();
        for ((low, high), r) in queries.iter().zip(&results) {
            prop_assert_eq!(r.count, string_oracle(&keys, low, high), "mutated [{:?}, {:?}]", low, high);
        }

        executor.drive_to_convergence(1_000_000);
        prop_assert!(table.inner().is_converged());
        let results = executor.execute_batch(&batch).unwrap();
        for ((low, high), r) in queries.iter().zip(&results) {
            prop_assert_eq!(r.count, string_oracle(&keys, low, high), "converged [{:?}, {:?}]", low, high);
        }
    }

    /// i64 columns: COUNT **and decoded SUM** are exact through the
    /// sign-flip encoding at every stage.
    #[test]
    fn i64_sums_exact_at_every_stage(
        values in prop::collection::vec(any::<i64>(), 5..200),
        ranges in prop::collection::vec((any::<i64>(), any::<i64>()), 1..12),
        shards in 1..5usize,
    ) {
        let table = Arc::new(
            TypedTable::builder()
                .column(
                    TypedColumnSpec::new("x", values.clone())
                        .with_shards(shards)
                        .with_policy(BudgetPolicy::FixedDelta(0.5)),
                )
                .build(),
        );
        let executor = TypedExecutor::with_config(Arc::clone(&table), foreground());
        let batch: Vec<TypedQuery<i64>> = ranges
            .iter()
            .map(|&(a, b)| TypedQuery::new("x", a.min(b), a.max(b)))
            .collect();
        for stage in 0..3 {
            let results = executor.execute_batch(&batch).unwrap();
            for (q, r) in batch.iter().zip(&results) {
                let expected_count = values.iter().filter(|&&v| v >= q.low && v <= q.high).count() as u64;
                let expected_sum: i128 = values
                    .iter()
                    .filter(|&&v| v >= q.low && v <= q.high)
                    .map(|&v| v as i128)
                    .sum();
                prop_assert_eq!(r.count, expected_count, "stage {} [{}, {}]", stage, q.low, q.high);
                prop_assert_eq!(r.sum, Some(expected_sum), "stage {} [{}, {}]", stage, q.low, q.high);
            }
            if stage == 1 {
                executor.drive_to_convergence(1_000_000);
                prop_assert!(table.inner().is_converged());
            }
        }
    }
}
