//! Mutation batches through the executor: shard-parallel writes on the
//! pi-sched dispatch path, interleaved with concurrent reads and
//! maintenance, checked against a scan oracle.

use std::sync::{Arc, Mutex};

use pi_core::budget::BudgetPolicy;
use pi_core::mutation::Mutation;
use pi_core::testing::TestRng;
use pi_engine::{ColumnSpec, Executor, ExecutorConfig, Table, TableQuery};
use pi_storage::scan::scan_range_sum;
use pi_storage::Value;

fn values(n: usize, domain: u64, seed: u64) -> Vec<Value> {
    pi_core::testing::random_column(n, domain, seed).into_vec()
}

/// Applies `m` to the live-multiset oracle, returning whether it applied.
fn oracle_apply(oracle: &mut Vec<Value>, m: &Mutation) -> bool {
    match *m {
        Mutation::Insert(v) => {
            oracle.push(v);
            true
        }
        Mutation::Delete(v) => match oracle.iter().position(|&x| x == v) {
            Some(at) => {
                oracle.remove(at);
                true
            }
            None => false,
        },
        Mutation::Update { old, new } => {
            if oracle_apply(oracle, &Mutation::Delete(old)) {
                oracle.push(new);
                true
            } else {
                false
            }
        }
    }
}

#[test]
fn executor_mutation_batches_match_oracle() {
    let base = values(20_000, 20_000, 3);
    let mut oracle = base.clone();
    let table = Arc::new(
        Table::builder()
            .column(ColumnSpec::new("a", base).with_shards(8))
            .build(),
    );
    // Multi-worker pool: mutation waves go through the real pool path.
    let executor = Executor::with_config(Arc::clone(&table), ExecutorConfig::with_workers(4));
    let mut rng = TestRng::new(17);
    for round in 0..20 {
        // Update targets draw from a value band deletes never touch:
        // within a batch the executor sequences a cross-shard update's
        // insert *after* the single-shard mutations (wave 2), so a replay
        // oracle is only exact in request order when no same-batch delete
        // races such an insert for its last live copy.
        let batch: Vec<Mutation> = (0..50)
            .map(|_| match rng.below(3) {
                0 => Mutation::Insert(rng.below(25_000)),
                1 => Mutation::Delete(rng.below(25_000)),
                _ => Mutation::Update {
                    old: rng.below(25_000),
                    new: 40_000 + rng.below(5_000),
                },
            })
            .collect();
        let applied = executor.apply_mutations("a", &batch).unwrap();
        for (m, &ok) in batch.iter().zip(&applied) {
            let expected = oracle_apply(&mut oracle, m);
            assert_eq!(ok, expected, "round {round}: {m:?}");
        }
        // Interleave reads (some through covered-shard shortcuts).
        let queries: Vec<TableQuery> = (0..10)
            .map(|i| {
                let low = rng.below(20_000);
                TableQuery::new("a", low, low.saturating_add([100, 5_000, u64::MAX][i % 3]))
            })
            .collect();
        let results = executor.execute_batch(&queries).unwrap();
        for (q, r) in queries.iter().zip(&results) {
            assert_eq!(
                *r,
                scan_range_sum(&oracle, q.low, q.high),
                "round {round}: [{}, {}]",
                q.low,
                q.high
            );
        }
    }
    // Everything merges and re-converges.
    executor.drive_to_convergence(usize::MAX);
    assert!(table.is_converged());
    let total = executor.execute_one("a", 0, u64::MAX).unwrap();
    assert_eq!(total, scan_range_sum(&oracle, 0, u64::MAX));
}

#[test]
fn mutated_converged_shard_re_enters_maintenance_via_executor() {
    let base = values(8_000, 8_000, 5);
    let table = Arc::new(
        Table::builder()
            .column(
                ColumnSpec::new("a", base.clone())
                    .with_shards(4)
                    .with_policy(BudgetPolicy::FixedDelta(1.0)),
            )
            .build(),
    );
    let executor = Executor::with_config(
        Arc::clone(&table),
        ExecutorConfig {
            worker_threads: 2,
            maintenance_steps: 4,
            background_maintenance: false,
        },
    );
    executor.drive_to_convergence(usize::MAX);
    assert!(table.is_converged());
    // The terminal latch is set: maintenance performs no work.
    assert_eq!(executor.maintain(16), 0);

    // A write to the converged table must reopen maintenance.
    let applied = executor
        .apply_mutations("a", &[Mutation::Insert(4_000), Mutation::Delete(base[0])])
        .unwrap();
    assert_eq!(applied, vec![true, true]);
    assert!(!table.is_converged(), "mutated shards must un-converge");
    let spent = executor.drive_to_convergence(usize::MAX);
    assert!(spent > 0, "re-convergence must perform maintenance work");
    assert!(table.is_converged());

    // And the answers reflect the mutations exactly.
    let mut oracle = base;
    oracle.push(4_000);
    oracle.remove(0);
    assert_eq!(
        executor.execute_one("a", 0, u64::MAX).unwrap(),
        scan_range_sum(&oracle, 0, u64::MAX)
    );
}

#[test]
fn cross_shard_updates_are_atomic() {
    let base: Vec<Value> = (0..8_000).collect();
    let table = Arc::new(
        Table::builder()
            .column(ColumnSpec::new("a", base.clone()).with_shards(4))
            .build(),
    );
    let executor = Executor::with_config(Arc::clone(&table), ExecutorConfig::with_workers(4));
    // Move a value from the lowest shard's range to the highest, and try
    // one with an absent victim: the absent one must not insert its new
    // value.
    let applied = executor
        .apply_mutations(
            "a",
            &[
                Mutation::Update {
                    old: 10,
                    new: 7_990,
                },
                Mutation::Update {
                    old: 50_000, // absent
                    new: 7_991,
                },
            ],
        )
        .unwrap();
    assert_eq!(applied, vec![true, false]);
    assert_eq!(executor.execute_one("a", 10, 10).unwrap().count, 0);
    assert_eq!(executor.execute_one("a", 7_990, 7_990).unwrap().count, 2);
    assert_eq!(
        executor.execute_one("a", 7_991, 7_991).unwrap().count,
        1,
        "only the pre-existing 7991 — the failed update must not insert"
    );
    assert_eq!(
        executor.execute_one("a", 0, u64::MAX).unwrap().count as usize,
        base.len()
    );
}

#[test]
fn concurrent_writers_and_readers_stay_exact() {
    let base = values(30_000, 30_000, 7);
    let table = Arc::new(
        Table::builder()
            .column(ColumnSpec::new("a", base.clone()).with_shards(8))
            .build(),
    );
    let executor = Arc::new(Executor::with_config(
        Arc::clone(&table),
        ExecutorConfig::with_workers(4),
    ));
    // One writer inserts a known ladder of sentinel values while readers
    // hammer range queries. Readers can't predict the exact count (the
    // writer races them), but every answer must be bracketed by the
    // before/after states — and with distinct sentinels the monotone
    // growth is checkable.
    const SENTINEL_BASE: Value = 1_000_000;
    const WRITES: usize = 400;
    let writer = {
        let executor = Arc::clone(&executor);
        std::thread::spawn(move || {
            for i in 0..WRITES {
                let m = Mutation::Insert(SENTINEL_BASE + i as Value);
                assert_eq!(executor.apply_mutations("a", &[m]).unwrap(), vec![true]);
            }
        })
    };
    let observed = Arc::new(Mutex::new(Vec::new()));
    let mut readers = Vec::new();
    for _ in 0..2 {
        let executor = Arc::clone(&executor);
        let observed = Arc::clone(&observed);
        readers.push(std::thread::spawn(move || {
            let mut last = 0;
            for _ in 0..200 {
                let r = executor
                    .execute_one("a", SENTINEL_BASE, SENTINEL_BASE + WRITES as Value)
                    .unwrap();
                assert!(r.count <= WRITES as u64, "more sentinels than written");
                assert!(
                    r.count >= last,
                    "sentinel count regressed: {} then {}",
                    last,
                    r.count
                );
                last = r.count;
                observed.lock().unwrap().push(r.count);
            }
        }));
    }
    writer.join().unwrap();
    for r in readers {
        r.join().unwrap();
    }
    // Terminal state: all sentinels visible, base untouched elsewhere.
    let r = executor
        .execute_one("a", SENTINEL_BASE, SENTINEL_BASE + WRITES as Value)
        .unwrap();
    assert_eq!(r.count, WRITES as u64);
    executor.drive_to_convergence(usize::MAX);
    assert!(table.is_converged());
    assert_eq!(
        executor.execute_one("a", 0, SENTINEL_BASE - 1).unwrap(),
        scan_range_sum(&base, 0, SENTINEL_BASE - 1)
    );
}

#[test]
fn unknown_column_rejected_and_empty_batch_ok() {
    let table = Arc::new(
        Table::builder()
            .column(ColumnSpec::new("a", vec![1, 2, 3]))
            .build(),
    );
    let executor = Executor::new(table);
    assert!(executor
        .apply_mutations("nope", &[Mutation::Insert(1)])
        .is_err());
    assert_eq!(
        executor.apply_mutations("a", &[]).unwrap(),
        Vec::<bool>::new()
    );
}
