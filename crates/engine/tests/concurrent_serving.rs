//! Acceptance test for the serving engine: ≥4 concurrent client threads
//! over a ≥4-shard, multi-column table, with results bit-identical to the
//! full-scan baseline and every shard converging.

use std::sync::Arc;

use pi_core::budget::BudgetPolicy;
use pi_engine::{ColumnSpec, Executor, ExecutorConfig, Table, TableQuery};
use pi_storage::scan::scan_range_sum;
use pi_workloads::data::{self, Distribution};
use pi_workloads::multi_client::{self, MultiClientSpec, PatternAssignment};
use pi_workloads::{Pattern, WorkloadSpec};

const ROWS: usize = 60_000;
const SHARDS: usize = 4;
const CLIENTS: usize = 8;

fn serving_table() -> (Arc<Table>, Vec<u64>, Vec<u64>) {
    let uniform = data::generate(Distribution::UniformRandom, ROWS, 21);
    let skewed = data::generate(Distribution::Skewed, ROWS, 22);
    let table = Arc::new(
        Table::builder()
            .column(
                ColumnSpec::new("uniform", uniform.clone())
                    .with_shards(SHARDS)
                    .with_policy(BudgetPolicy::FixedDelta(0.25)),
            )
            .column(
                ColumnSpec::new("skewed", skewed.clone())
                    .with_shards(SHARDS)
                    .with_policy(BudgetPolicy::FixedDelta(0.25)),
            )
            .build(),
    );
    (table, uniform, skewed)
}

#[test]
fn concurrent_clients_over_multi_column_table() {
    let (table, uniform, skewed) = serving_table();
    let executor = Arc::new(Executor::with_config(
        Arc::clone(&table),
        ExecutorConfig {
            worker_threads: 4,
            maintenance_steps: 8,
            background_maintenance: true,
        },
    ));

    // Eight clients, one Figure-6 pattern each, interleaved over both
    // columns in batches.
    let streams = multi_client::generate(&MultiClientSpec {
        clients: CLIENTS,
        base: WorkloadSpec::range(ROWS as u64, 60),
        assignment: PatternAssignment::AllPatterns,
    });

    std::thread::scope(|scope| {
        for stream in &streams {
            let executor = Arc::clone(&executor);
            let uniform = &uniform;
            let skewed = &skewed;
            scope.spawn(move || {
                for chunk in stream.queries.chunks(10) {
                    let batch: Vec<TableQuery> = chunk
                        .iter()
                        .enumerate()
                        .map(|(i, q)| {
                            let column = if (stream.client + i) % 2 == 0 {
                                "uniform"
                            } else {
                                "skewed"
                            };
                            TableQuery::new(column, q.low, q.high)
                        })
                        .collect();
                    let results = executor.execute_batch(&batch).unwrap();
                    for (q, r) in batch.iter().zip(&results) {
                        let base = if q.column == "uniform" {
                            uniform
                        } else {
                            skewed
                        };
                        assert_eq!(
                            *r,
                            scan_range_sum(base, q.low, q.high),
                            "client {} {:?}",
                            stream.client,
                            q
                        );
                    }
                }
            });
        }
    });

    // Workload statistics observed the traffic on both columns.
    for name in ["uniform", "skewed"] {
        let column = table.column(name).unwrap();
        assert!(
            column.stats().query_count() > 0,
            "{name} recorded no queries"
        );
    }

    // The serving traffic plus maintenance converges every shard.
    executor.drive_to_convergence(10_000_000);
    assert!(table.is_converged());
    for (name, status) in table.status() {
        assert!(status.converged, "column {name} not converged: {status:?}");
        assert_eq!(status.fraction_indexed, 1.0, "column {name}");
    }
    for name in ["uniform", "skewed"] {
        for (i, status) in table
            .column(name)
            .unwrap()
            .shard_statuses()
            .iter()
            .enumerate()
        {
            assert!(status.converged, "{name} shard {i} not converged");
        }
    }

    // Converged answers are still bit-identical to the full scan.
    let results = executor
        .execute_batch(&[
            TableQuery::new("uniform", 1_000, 30_000),
            TableQuery::new("skewed", 25_000, 35_000),
        ])
        .unwrap();
    assert_eq!(results[0], scan_range_sum(&uniform, 1_000, 30_000));
    assert_eq!(results[1], scan_range_sum(&skewed, 25_000, 35_000));
}

#[test]
fn decision_tree_picks_per_column_algorithms() {
    let (table, _, _) = serving_table();
    // Uniform data → Radixsort MSD; skewed data → Bucketsort (range hint
    // is the default Auto(Unknown) → distribution decides via Figure 11).
    let uniform = table.column("uniform").unwrap();
    let skewed = table.column("skewed").unwrap();
    assert_ne!(
        uniform.algorithm(),
        skewed.algorithm(),
        "distribution estimation should differentiate the columns"
    );
}

#[test]
fn point_query_workload_steers_stats() {
    let (table, _, _) = serving_table();
    let column = table.column("uniform").unwrap();
    let queries =
        pi_workloads::patterns::generate(Pattern::Random, &WorkloadSpec::point(ROWS as u64, 100));
    for q in &queries {
        column.query(q.low, q.high);
    }
    assert_eq!(
        column.stats().query_shape(),
        pi_core::decision::QueryShape::Point
    );
    // Observed point traffic re-walks Figure 11 to LSD — drift from the
    // build-time choice (MSD for uniform data) is now visible.
    assert_eq!(
        column.recommended_algorithm(),
        pi_core::decision::Algorithm::RadixsortLsd
    );
    assert_ne!(column.recommended_algorithm(), column.algorithm());
}
