//! Multi-column serving: conjunction planning, metamorphic
//! order-independence, grouped-aggregate cache freshness under
//! mutation, heterogeneous tables, and empty-column digests.
//!
//! The planner-pinning tests fix the two decision inputs the issue
//! names: refinement state ρ breaks selectivity ties towards converged
//! columns, and a large selectivity gap (0.1% vs 90%) overrides any
//! convergence gap. The aggregate-cache regression is the
//! write-then-read race: a grouped aggregate racing a mutation on the
//! same shard must never serve the pre-mutation cached digest.

use std::sync::Arc;

use pi_engine::{
    EngineError, ErasedColumn, ErasedKey, ErasedSum, ExecutorConfig, GroupedQuery, MultiColumnSpec,
    MultiExecutor, MultiTable, PlanMode, Predicate, RowMutation,
};
use pi_obs::MetricsRegistry;
use pi_workloads::multicol::{conjunction_ranges, hetero_rows, u64_columns};
use pi_workloads::Distribution;

/// Foreground-only inner executor: no maintenance floor, no background
/// threads, so tests fully control each column's refinement state.
fn foreground() -> ExecutorConfig {
    ExecutorConfig {
        worker_threads: 2,
        maintenance_steps: 0,
        background_maintenance: false,
    }
}

/// Converges every shard of one inner column, leaving its siblings
/// untouched.
fn converge_column(table: &MultiTable, pos: usize) {
    let column = &table.inner().columns()[pos];
    for shard in 0..column.shard_count() {
        column.advance_shard_by(shard, usize::MAX);
    }
    assert!(column.is_converged());
}

fn two_u64_columns(rows: usize, domain: u64, seed: u64) -> Arc<MultiTable> {
    let mut cols = u64_columns(2, rows, domain, seed).into_iter();
    Arc::new(
        MultiTable::builder()
            .column(MultiColumnSpec::new(
                "a",
                ErasedColumn::U64(cols.next().unwrap()),
            ))
            .column(MultiColumnSpec::new(
                "b",
                ErasedColumn::U64(cols.next().unwrap()),
            ))
            .build(),
    )
}

/// Oracle for a u64/u64 conjunction: filter the raw rows.
fn conj_oracle(a: &[u64], b: &[u64], ra: (u64, u64), rb: (u64, u64)) -> (u64, u128, u128) {
    let mut count = 0;
    let (mut sum_a, mut sum_b) = (0u128, 0u128);
    for (&va, &vb) in a.iter().zip(b) {
        if va >= ra.0 && va <= ra.1 && vb >= rb.0 && vb <= rb.1 {
            count += 1;
            sum_a += va as u128;
            sum_b += vb as u128;
        }
    }
    (count, sum_a, sum_b)
}

#[test]
fn planner_breaks_selectivity_ties_towards_the_converged_column() {
    // Both columns hold the *same* data, so identical bounds give
    // identical selectivity estimates; only ρ differs.
    let values = u64_columns(1, 20_000, 100_000, 7).pop().unwrap();
    let table = Arc::new(
        MultiTable::builder()
            .column(MultiColumnSpec::new(
                "cold",
                ErasedColumn::U64(values.clone()),
            ))
            .column(MultiColumnSpec::new("warm", ErasedColumn::U64(values)))
            .build(),
    );
    converge_column(&table, 1);
    let exec = MultiExecutor::with_config(Arc::clone(&table), foreground());
    let predicates = [
        Predicate::between_u64("cold", 10_000, 30_000),
        Predicate::between_u64("warm", 10_000, 30_000),
    ];
    let plan = exec.plan(&predicates).unwrap();
    assert_eq!(plan.driving, 1, "tie on selectivity → the converged column");
    assert!(plan.stats[1].rho > plan.stats[0].rho);
    assert!((plan.stats[0].selectivity - plan.stats[1].selectivity).abs() < 1e-9);

    // And flipped predicate order flips the index but not the column.
    let flipped = [predicates[1].clone(), predicates[0].clone()];
    assert_eq!(exec.plan(&flipped).unwrap().driving, 0);
}

#[test]
fn selectivity_gap_overrides_any_convergence_gap() {
    // "a" is fully converged but its predicate matches ~90% of the
    // domain; "b" is stone cold at ~0.1%. The planner must drive "b":
    // validating 90% of the table costs ~900× the selective scan.
    let table = two_u64_columns(20_000, 1_000_000, 11);
    converge_column(&table, 0);
    let exec = MultiExecutor::with_config(Arc::clone(&table), foreground());
    let ranges = &conjunction_ranges(&[0.9, 0.001], 1_000_000, 1, 13)[0];
    let predicates = [
        Predicate::between_u64("a", ranges[0].0, ranges[0].1),
        Predicate::between_u64("b", ranges[1].0, ranges[1].1),
    ];
    let plan = exec.plan(&predicates).unwrap();
    assert_eq!(plan.driving, 1, "0.1% beats 90% regardless of ρ");
    assert!(plan.stats[0].selectivity > 0.5);
    assert!(plan.stats[1].selectivity < 0.05);
}

#[test]
fn predicate_order_and_plan_mode_never_change_the_result_set() {
    let cols = u64_columns(2, 8_000, 50_000, 17);
    let (a, b) = (cols[0].clone(), cols[1].clone());
    let table = two_u64_columns(8_000, 50_000, 17);
    // Skew the refinement state so Planned and FirstPredicate genuinely
    // disagree on the driving column.
    converge_column(&table, 1);
    let planned = MultiExecutor::with_config(Arc::clone(&table), foreground());
    let first = MultiExecutor::with_config(Arc::clone(&table), foreground())
        .with_mode(PlanMode::FirstPredicate);
    for conj in conjunction_ranges(&[0.4, 0.02], 50_000, 12, 19) {
        let (ra, rb) = (conj[0], conj[1]);
        let fwd = [
            Predicate::between_u64("a", ra.0, ra.1),
            Predicate::between_u64("b", rb.0, rb.1),
        ];
        let rev = [fwd[1].clone(), fwd[0].clone()];
        let x = planned.execute(&fwd).unwrap();
        let y = planned.execute(&rev).unwrap();
        let z = first.execute(&fwd).unwrap();
        // Metamorphic: same rows, sums realigned to predicate order.
        assert_eq!(x.count, y.count);
        assert_eq!(x.sums, vec![y.sums[1], y.sums[0]]);
        assert_eq!((x.count, &x.sums), (z.count, &z.sums));
        // And both agree with the raw-row oracle.
        let (count, sum_a, sum_b) = conj_oracle(&a, &b, ra, rb);
        assert_eq!(x.count, count, "a={ra:?} b={rb:?}");
        assert_eq!(x.sums[0], Some(ErasedSum::U64(sum_a)));
        assert_eq!(x.sums[1], Some(ErasedSum::U64(sum_b)));
    }
}

/// Grouped-aggregate oracle over the live rows of a u64 column
/// (codes are the values themselves).
fn grouped_oracle(rows: &[(u64, bool)], low: u64, high: u64, width: u64) -> Vec<(u64, u64, u128)> {
    use std::collections::BTreeMap;
    let mut cells: BTreeMap<u64, (u64, u128)> = BTreeMap::new();
    for &(v, live) in rows {
        if live {
            let cell = cells.entry(v / width).or_default();
            cell.0 += 1;
            cell.1 += v as u128;
        }
    }
    cells
        .into_iter()
        .filter(|&(bucket, _)| bucket >= low / width && bucket <= high / width)
        .map(|(bucket, (count, sum))| (bucket, count, sum))
        .collect()
}

#[test]
fn grouped_aggregates_match_the_oracle_and_reuse_the_cache() {
    let values = u64_columns(1, 10_000, 4_096, 23).pop().unwrap();
    let registry = Arc::new(MetricsRegistry::new());
    let table = Arc::new(
        MultiTable::builder()
            .column(MultiColumnSpec::new("v", ErasedColumn::U64(values.clone())))
            .build(),
    );
    let exec = MultiExecutor::with_metrics(Arc::clone(&table), foreground(), Arc::clone(&registry));
    let rows: Vec<(u64, bool)> = values.iter().map(|&v| (v, true)).collect();
    let query = GroupedQuery::new("v", ErasedKey::U64(100), ErasedKey::U64(3_000), 256);

    let got = exec.grouped(&query).unwrap();
    let want = grouped_oracle(&rows, 100, 3_000, 256);
    assert_eq!(got.len(), want.len());
    for (g, (bucket, count, sum)) in got.iter().zip(&want) {
        assert_eq!((g.bucket, g.count), (*bucket, *count));
        assert_eq!(g.sum, Some(ErasedSum::U64(*sum)));
        // u64 codes decode to themselves; min/max stay inside the bucket.
        let (min, max) = match (&g.min, &g.max) {
            (Some(ErasedKey::U64(min)), Some(ErasedKey::U64(max))) => (*min, *max),
            other => panic!("u64 groups decode min/max: {other:?}"),
        };
        assert!(min / 256 == g.bucket && max / 256 == g.bucket && min <= max);
    }
    assert_eq!(
        registry.snapshot().counter("planner.agg.cache_hits"),
        Some(0)
    );
    assert!(!exec.aggregate_cache().is_empty());

    // Same query again: served from cache, byte-identical.
    let again = exec.grouped(&query).unwrap();
    assert_eq!(again, got);
    let hits = registry
        .snapshot()
        .counter("planner.agg.cache_hits")
        .unwrap();
    assert!(hits > 0, "unchanged shards must serve cached trees");
}

#[test]
fn completed_mutation_invalidates_the_aggregate_cache() {
    // The issue's regression: write-then-read on the same shard must
    // never serve the pre-mutation digest — the stamp protocol bumps the
    // shard's mutation counter before the write releases the shard lock.
    let values = u64_columns(1, 6_000, 2_048, 29).pop().unwrap();
    let registry = Arc::new(MetricsRegistry::new());
    let table = Arc::new(
        MultiTable::builder()
            .column(MultiColumnSpec::new("v", ErasedColumn::U64(values.clone())))
            .build(),
    );
    let exec = MultiExecutor::with_metrics(Arc::clone(&table), foreground(), Arc::clone(&registry));
    let mut rows: Vec<(u64, bool)> = values.iter().map(|&v| (v, true)).collect();
    let query = GroupedQuery::new("v", ErasedKey::U64(0), ErasedKey::U64(2_047), 128);

    // Warm the cache, then mutate rows that land inside cached buckets.
    let before = exec.grouped(&query).unwrap();
    assert_eq!(
        before.iter().map(|g| g.count).sum::<u64>(),
        rows.len() as u64
    );
    let applied = exec.apply_rows(&[
        RowMutation::Delete(0),
        RowMutation::Insert(vec![ErasedKey::U64(values[0])]),
        RowMutation::Update {
            row: 1,
            keys: vec![ErasedKey::U64((values[1] + 1_000) % 2_048)],
        },
        RowMutation::Delete(2),
    ]);
    assert_eq!(applied, vec![true; 4]);
    rows[0].1 = false;
    rows.push((values[0], true));
    rows[1].0 = (values[1] + 1_000) % 2_048;
    rows[2].1 = false;

    // The very next read must observe the post-mutation multiset.
    let after = exec.grouped(&query).unwrap();
    let want = grouped_oracle(&rows, 0, 2_047, 128);
    assert_eq!(after.len(), want.len());
    for (g, (bucket, count, sum)) in after.iter().zip(&want) {
        assert_eq!(
            (g.bucket, g.count, g.sum),
            (*bucket, *count, Some(ErasedSum::U64(*sum)))
        );
    }
    assert_ne!(after, before, "the mutations changed touched buckets");
    let snapshot = registry.snapshot();
    assert!(
        snapshot.counter("planner.agg.cache_invalidations").unwrap() > 0,
        "stale stamps must be counted as invalidations"
    );

    // Deletes of dead rows are rejected and leave the cache current.
    assert_eq!(exec.apply_rows(&[RowMutation::Delete(0)]), vec![false]);
    assert_eq!(exec.grouped(&query).unwrap(), after);
}

#[test]
fn heterogeneous_conjunctions_are_exact_at_every_stage() {
    let (ids, floats, strings) = hetero_rows(Distribution::Skewed, 6_000, 500.0, 31);
    let table = Arc::new(
        MultiTable::builder()
            .column(MultiColumnSpec::new("id", ErasedColumn::U64(ids.clone())))
            .column(MultiColumnSpec::new(
                "temp",
                ErasedColumn::F64(floats.clone()),
            ))
            .column(MultiColumnSpec::new(
                "name",
                ErasedColumn::Str(strings.clone()),
            ))
            .build(),
    );
    let exec = MultiExecutor::with_config(Arc::clone(&table), foreground());
    let oracle = |ir: (u64, u64), fr: (f64, f64), sr: (&str, &str)| -> u64 {
        (0..ids.len())
            .filter(|&r| {
                ids[r] >= ir.0
                    && ids[r] <= ir.1
                    && floats[r] >= fr.0
                    && floats[r] <= fr.1
                    && strings[r].as_str() >= sr.0
                    && strings[r].as_str() <= sr.1
            })
            .count() as u64
    };
    // The skewed string data piles 90% of rows onto the "progressiv" hot
    // prefix — these bounds share its 8-byte code, so code-space
    // candidate selection over-selects the whole hot set and only exact
    // full-key validation can correct it.
    let cases = [
        ((0, 3_000), (-250.0, 250.0), ("progressiva", "progressivz")),
        ((1_000, 5_999), (0.0, 500.0), ("a", "zzzzzzzzzzzzz")),
        ((0, u64::MAX), (-500.0, 0.0), ("progressivc", "progressivm")),
    ];
    let run = |exec: &MultiExecutor| {
        for &(ir, fr, sr) in &cases {
            let predicates = [
                Predicate::new("id", ErasedKey::U64(ir.0), ErasedKey::U64(ir.1)),
                Predicate::new("temp", ErasedKey::F64(fr.0), ErasedKey::F64(fr.1)),
                Predicate::new(
                    "name",
                    ErasedKey::Str(sr.0.into()),
                    ErasedKey::Str(sr.1.into()),
                ),
            ];
            let answer = exec.execute(&predicates).unwrap();
            assert_eq!(answer.count, oracle(ir, fr, sr), "{ir:?} {fr:?} {sr:?}");
            // Sum capability: exact for u64, gated off for f64/string.
            assert!(matches!(answer.sums[0], Some(ErasedSum::U64(_))));
            assert_eq!(answer.sums[1], None);
            assert_eq!(answer.sums[2], None);
        }
    };
    // Cold, partially refined, converged: exact at every stage.
    run(&exec);
    exec.drive_to_convergence(64);
    run(&exec);
    exec.drive_to_convergence(usize::MAX);
    assert!(table.inner().is_converged());
    run(&exec);
}

#[test]
fn heterogeneous_mutations_keep_conjunctions_exact() {
    let (ids, floats, strings) = hetero_rows(Distribution::UniformRandom, 2_000, 100.0, 37);
    let table = Arc::new(
        MultiTable::builder()
            .column(MultiColumnSpec::new("id", ErasedColumn::U64(ids.clone())))
            .column(MultiColumnSpec::new(
                "temp",
                ErasedColumn::F64(floats.clone()),
            ))
            .column(MultiColumnSpec::new(
                "name",
                ErasedColumn::Str(strings.clone()),
            ))
            .build(),
    );
    let exec = MultiExecutor::with_config(Arc::clone(&table), foreground());
    // Mirror the mutations on a plain row vector as ground truth.
    let mut rows: Vec<(u64, f64, String, bool)> = ids
        .iter()
        .zip(&floats)
        .zip(&strings)
        .map(|((&i, &f), s)| (i, f, s.clone(), true))
        .collect();
    let applied = exec.apply_rows(&[
        RowMutation::Delete(10),
        RowMutation::Insert(vec![
            ErasedKey::U64(42),
            ErasedKey::F64(-1.5),
            ErasedKey::Str("inserted-row".into()),
        ]),
        RowMutation::Update {
            row: 20,
            keys: vec![
                ErasedKey::U64(43),
                ErasedKey::F64(2.5),
                ErasedKey::Str("updated-row".into()),
            ],
        },
    ]);
    assert_eq!(applied, vec![true; 3]);
    rows[10].3 = false;
    rows.push((42, -1.5, "inserted-row".into(), true));
    rows[20] = (43, 2.5, "updated-row".into(), true);
    assert_eq!(table.live_rows(), rows.iter().filter(|r| r.3).count());

    for (low, high) in [(0u64, 100u64), (40, 45), (0, u64::MAX)] {
        let predicates = [
            Predicate::between_u64("id", low, high),
            Predicate::new("temp", ErasedKey::F64(-100.0), ErasedKey::F64(100.0)),
            Predicate::new(
                "name",
                ErasedKey::Str("a".into()),
                ErasedKey::Str("zzzz".into()),
            ),
        ];
        let answer = exec.execute(&predicates).unwrap();
        let want = rows
            .iter()
            .filter(|(i, f, s, live)| {
                *live
                    && (low..=high).contains(i)
                    && (-100.0..=100.0).contains(f)
                    && s.as_str() >= "a"
                    && s.as_str() <= "zzzz"
            })
            .count() as u64;
        assert_eq!(answer.count, want, "[{low}, {high}]");
    }
}

#[test]
fn emptied_columns_serve_structurally_empty_digests_per_domain() {
    // Empty-column digests are a *count guard*: a column with no live
    // rows materialises no cells at all — never min/max sentinels. Cover
    // all four domains by deleting every row and re-running the grouped
    // aggregate and the conjunction path.
    let columns: Vec<(&str, ErasedColumn, ErasedKey, ErasedKey)> = vec![
        (
            "u",
            ErasedColumn::U64(vec![5, 10, 15]),
            ErasedKey::U64(0),
            ErasedKey::U64(u64::MAX),
        ),
        (
            "i",
            ErasedColumn::I64(vec![-5, 0, 5]),
            ErasedKey::I64(i64::MIN),
            ErasedKey::I64(i64::MAX),
        ),
        (
            "f",
            ErasedColumn::F64(vec![-1.5, 0.0, 2.5]),
            ErasedKey::F64(f64::NEG_INFINITY),
            ErasedKey::F64(f64::INFINITY),
        ),
        (
            "s",
            ErasedColumn::Str(vec!["a".into(), "b".into(), "c".into()]),
            ErasedKey::Str("".into()),
            ErasedKey::Str("~~~~~~~~~~".into()),
        ),
    ];
    for (name, keys, low, high) in columns {
        let rows = keys.len();
        let table = Arc::new(
            MultiTable::builder()
                .column(MultiColumnSpec::new(name, keys))
                .build(),
        );
        let exec = MultiExecutor::with_config(Arc::clone(&table), foreground());
        let query = GroupedQuery::new(name, low.clone(), high.clone(), 1u64 << 32);
        assert!(!exec.grouped(&query).unwrap().is_empty());

        let deletes: Vec<RowMutation> = (0..rows).map(RowMutation::Delete).collect();
        assert_eq!(exec.apply_rows(&deletes), vec![true; rows]);
        assert_eq!(table.live_rows(), 0);
        assert_eq!(
            exec.grouped(&query).unwrap(),
            Vec::new(),
            "domain {name}: no live rows → no cells, not sentinel cells"
        );
        let answer = exec.execute(&[Predicate::new(name, low, high)]).unwrap();
        assert_eq!(answer.count, 0);
    }
}

#[test]
fn conjunction_errors_are_typed_and_precise() {
    let table = two_u64_columns(500, 1_000, 41);
    let exec = MultiExecutor::with_config(Arc::clone(&table), foreground());

    assert_eq!(exec.execute(&[]), Err(EngineError::EmptyConjunction));
    assert_eq!(exec.plan(&[]), Err(EngineError::EmptyConjunction));

    let unknown = Predicate::between_u64("missing", 0, 10);
    assert_eq!(
        exec.execute(std::slice::from_ref(&unknown)),
        Err(EngineError::UnknownColumn("missing".into()))
    );
    assert_eq!(
        exec.grouped(&GroupedQuery::new(
            "missing",
            ErasedKey::U64(0),
            ErasedKey::U64(10),
            16
        )),
        Err(EngineError::UnknownColumn("missing".into()))
    );

    let mismatched = Predicate::new("a", ErasedKey::F64(0.0), ErasedKey::F64(1.0));
    assert_eq!(
        exec.execute(&[mismatched]),
        Err(EngineError::DomainMismatch("a".into()))
    );
    assert_eq!(
        exec.grouped(&GroupedQuery::new(
            "a",
            ErasedKey::Str("x".into()),
            ErasedKey::Str("y".into()),
            16
        )),
        Err(EngineError::DomainMismatch("a".into()))
    );

    // A typed-empty predicate (low > high) empties the conjunction
    // without scanning — and an inverted grouped range selects nothing.
    let answer = exec
        .execute(&[
            Predicate::between_u64("a", 0, u64::MAX),
            Predicate::between_u64("b", 10, 9),
        ])
        .unwrap();
    assert_eq!(answer.count, 0);
    assert_eq!(answer.sums, vec![Some(ErasedSum::U64(0)); 2]);
    assert_eq!(
        exec.grouped(&GroupedQuery::new(
            "a",
            ErasedKey::U64(10),
            ErasedKey::U64(9),
            16
        ))
        .unwrap(),
        Vec::new()
    );
}

#[test]
fn planner_metrics_track_conjunctions_and_driving_choices() {
    let registry = Arc::new(MetricsRegistry::new());
    let table = two_u64_columns(4_000, 10_000, 43);
    converge_column(&table, 1);
    let exec = MultiExecutor::with_metrics(Arc::clone(&table), foreground(), Arc::clone(&registry));
    // Equal bounds on equal-size domains: ρ decides, so "b" drives.
    for _ in 0..5 {
        exec.execute(&[
            Predicate::between_u64("a", 100, 5_000),
            Predicate::between_u64("b", 100, 5_000),
        ])
        .unwrap();
    }
    let snapshot = registry.snapshot();
    assert_eq!(snapshot.counter("planner.conjunctions"), Some(5));
    let a = snapshot.counter("planner.driving.a").unwrap();
    let b = snapshot.counter("planner.driving.b").unwrap();
    assert_eq!(a + b, 5);
    assert!(b >= a, "the converged column should win the tie-breaks");
    assert!(snapshot.counter("planner.survivors_validated").unwrap() > 0);
}
