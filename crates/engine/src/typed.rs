//! Typed tables: float, signed-integer and string key domains served
//! through the unchanged `u64` engine core.
//!
//! The four progressive algorithms,
//! [`MutableIndex`](pi_core::mutation::MutableIndex), equi-depth
//! sharding, digests and the executor all
//! operate on `u64` codes. This module is the boundary layer that opens
//! other key domains over that core without forking any of it:
//!
//! * [`TableKey`] — how a key domain plugs into the engine: an
//!   order-preserving map to codes (via
//!   [`pi_storage::encoding::OrderedKey`]), an exact key comparison, and
//!   two capability flags — whether encoded SUMs decode back to the key
//!   domain ([`TableKey::SUM_SUPPORTED`]) and whether distinct keys can
//!   share a code ([`TableKey::PREFIX_ENCODED`]).
//! * [`TypedTable`] — a facade over [`Table`]: columns are built from
//!   typed keys (encoded at construction, so shard boundaries are drawn
//!   by equi-depth partitioning *in encoded space*), queries take typed
//!   bounds, and answers come back as [`TypedResult`]s with SUM gated by
//!   the domain's capability.
//! * [`TypedExecutor`] — the same facade over [`Executor`]: typed batches
//!   fan out shard-parallel on the persistent pool, typed mutation
//!   batches ride the executor's mutation waves.
//!
//! ## Exact domains vs prefix domains
//!
//! For `u64`, `i64`, `f64` and [`StrPrefix`] the encoding is injective
//! and fully order-preserving, so an encoded range scan *is* the typed
//! answer: `COUNT` needs no correction and, where supported, `SUM` is
//! decoded from the encoded aggregate (`i64` through its affine shift).
//!
//! `String` columns are **prefix-encoded**: rows are indexed by their
//! fixed 8-byte prefix, and distinct strings can tie on a code. The
//! typed table therefore keeps an exact-match side path — the full keys
//! of each prefix-encoded column, grouped by code and sorted — and every
//! query corrects its boundary codes against it: rows tying
//! `encode(low)` but ordered below `low`, and rows tying `encode(high)`
//! but ordered above `high`, are subtracted from the encoded count.
//! Answers are exact over full-string order at every refinement stage.
//!
//! ## Digest capability matrix
//!
//! | Key domain | COUNT | SUM |
//! |---|---|---|
//! | `u64` | exact | exact |
//! | `i64` | exact | exact (affine decode) |
//! | `f64` | exact | **disabled** (order codes are not summable) |
//! | [`StrPrefix`] / `String` | exact | **disabled** (no string sum) |
//!
//! The engine's per-shard `(sum, count)` digests keep maintaining code
//! sums for every domain — they stay exact in encoded space and power
//! the O(1) covered-shard shortcut — but [`TypedResult::sum`] only
//! surfaces a SUM when the domain can decode it.
//!
//! ## Concurrency
//!
//! Exact-domain typed tables add no state over the inner table, so the
//! executor's per-shard isolation story carries over unchanged. A
//! prefix-encoded column's tie-break side table sits behind a `RwLock`:
//! typed queries hold it shared across the inner execution and their
//! corrections, typed mutations hold it exclusively while updating both
//! structures — so per column, typed string answers are consistent with
//! the writes that precede them.
//!
//! ```
//! use std::sync::Arc;
//! use pi_engine::typed::{TypedColumnSpec, TypedExecutor, TypedQuery, TypedTable};
//!
//! // A float column: negative keys, NaN-free, served through the
//! // unchanged u64 executor.
//! let temps: Vec<f64> = (0..4_000).map(|i| (i as f64) * 0.25 - 500.0).collect();
//! let table = Arc::new(
//!     TypedTable::builder()
//!         .column(TypedColumnSpec::new("celsius", temps).with_shards(4))
//!         .build(),
//! );
//! let executor = TypedExecutor::new(Arc::clone(&table));
//! let r = executor
//!     .execute_batch(&[TypedQuery::new("celsius", -1.0, 1.0)])
//!     .unwrap();
//! assert_eq!(r[0].count, 9); // -1.0, -0.75, …, 0.75, 1.0
//! assert_eq!(r[0].sum, None); // float SUM is capability-gated off
//! ```

use std::cmp::Ordering;
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, RwLock, RwLockReadGuard};

use pi_core::budget::BudgetPolicy;
use pi_core::mutation::Mutation;
use pi_obs::{Counter, MetricsRegistry};
use pi_storage::encoding::OrderedKey;
use pi_storage::scan::ScanResult;
use pi_storage::StrPrefix;

use crate::executor::{EngineError, Executor, ExecutorConfig, TableQuery};
use crate::table::{AlgorithmChoice, ColumnSpec, Table};

/// How a key domain plugs into the engine: encoding into the `u64` core,
/// exact key order, and the domain's digest capabilities.
///
/// Implementations exist for the exact domains `u64`, `i64`, `f64` and
/// [`StrPrefix`] (delegating to their
/// [`OrderedKey`] encodings) and for
/// `String` (prefix-encoded, with full-string order).
pub trait TableKey: Clone + std::fmt::Debug + Send + Sync + 'static {
    /// The key-domain SUM aggregate type.
    type Sum: std::fmt::Debug + Copy + PartialEq + Send + Sync;

    /// Whether encoded SUM aggregates decode back into the key domain.
    /// When `false`, typed answers carry COUNT only — the digest
    /// capability gate.
    const SUM_SUPPORTED: bool;

    /// Whether two *distinct* keys can share an encoded code. Exact
    /// domains answer straight from the encoded scan; prefix-encoded
    /// domains additionally resolve boundary ties against the full keys.
    const PREFIX_ENCODED: bool;

    /// The key's code in the `u64` core.
    fn to_code(&self) -> u64;

    /// Total order of the key domain (for `f64` this is the IEEE-754
    /// total order the encoding realises; for `String`, byte order).
    fn key_cmp(&self, other: &Self) -> Ordering;

    /// Decodes an encoded `(SUM, COUNT)` aggregate; `None` when
    /// [`SUM_SUPPORTED`](Self::SUM_SUPPORTED) is `false`.
    fn decode_sum(result: ScanResult) -> Option<Self::Sum>;
}

/// Exact domains delegate wholesale to their order-preserving encoding:
/// the code order *is* the key order, and codes never tie.
macro_rules! impl_table_key_for_ordered {
    ($($t:ty),*) => {$(
        impl TableKey for $t {
            type Sum = <$t as OrderedKey>::Sum;
            const SUM_SUPPORTED: bool = <$t as OrderedKey>::SUM_SUPPORTED;
            const PREFIX_ENCODED: bool = false;

            #[inline]
            fn to_code(&self) -> u64 {
                OrderedKey::encode(self)
            }

            #[inline]
            fn key_cmp(&self, other: &Self) -> Ordering {
                self.to_code().cmp(&other.to_code())
            }

            fn decode_sum(result: ScanResult) -> Option<Self::Sum> {
                <$t as OrderedKey>::decode_sum(result)
            }
        }
    )*};
}

impl_table_key_for_ordered!(u64, i64, f64, StrPrefix);

impl TableKey for String {
    type Sum = u128;
    const SUM_SUPPORTED: bool = false;
    /// Distinct strings sharing a first-8-byte prefix tie on a code; the
    /// typed table's exact-match side path breaks the ties.
    const PREFIX_ENCODED: bool = true;

    #[inline]
    fn to_code(&self) -> u64 {
        StrPrefix::new(self).encode()
    }

    #[inline]
    fn key_cmp(&self, other: &Self) -> Ordering {
        self.as_bytes().cmp(other.as_bytes())
    }

    fn decode_sum(_: ScanResult) -> Option<u128> {
        None
    }
}

/// Specification of one typed column (mirror of
/// [`ColumnSpec`] in a key domain).
#[derive(Debug, Clone)]
pub struct TypedColumnSpec<K: TableKey> {
    /// Column name used to address queries.
    pub name: String,
    /// The column's keys, in row order.
    pub keys: Vec<K>,
    /// Number of range shards (boundaries drawn equi-depth in encoded
    /// space).
    pub shards: usize,
    /// Per-shard indexing budget policy.
    pub policy: BudgetPolicy,
    /// Algorithm selection (decision tree over the encoded distribution,
    /// or pinned).
    pub choice: AlgorithmChoice,
}

impl<K: TableKey> TypedColumnSpec<K> {
    /// A typed column with the same defaults as
    /// [`ColumnSpec::new`](crate::table::ColumnSpec::new).
    pub fn new(name: impl Into<String>, keys: Vec<K>) -> Self {
        TypedColumnSpec {
            name: name.into(),
            keys,
            shards: 4,
            policy: BudgetPolicy::FixedDelta(0.25),
            choice: AlgorithmChoice::default(),
        }
    }

    /// Sets the shard count (builder style).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Sets the per-shard budget policy (builder style).
    pub fn with_policy(mut self, policy: BudgetPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the algorithm selection (builder style).
    pub fn with_choice(mut self, choice: AlgorithmChoice) -> Self {
        self.choice = choice;
        self
    }
}

/// A typed range-query answer: exact COUNT always, SUM only where the
/// key domain supports decoding it (see the module's capability matrix).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TypedResult<K: TableKey> {
    /// Exact number of live rows in `[low, high]` under the key domain's
    /// total order.
    pub count: u64,
    /// Key-domain SUM over those rows; `None` for domains whose encoded
    /// sums are not decodable (`f64`, strings).
    pub sum: Option<K::Sum>,
}

impl<K: TableKey> TypedResult<K> {
    /// The empty answer: zero rows, and the key-domain zero SUM where
    /// the domain supports SUM at all (so empty ranges and
    /// non-overlapping ranges answer identically).
    pub fn empty() -> Self {
        TypedResult {
            count: 0,
            sum: K::decode_sum(ScanResult::EMPTY),
        }
    }
}

/// A typed range query (`SELECT COUNT/SUM WHERE column BETWEEN low AND
/// high`, bounds inclusive under the key domain's total order).
#[derive(Debug, Clone, PartialEq)]
pub struct TypedQuery<K: TableKey> {
    /// Name of the queried column.
    pub column: String,
    /// Lower bound (inclusive).
    pub low: K,
    /// Upper bound (inclusive; `low > high` is the empty range).
    pub high: K,
}

impl<K: TableKey> TypedQuery<K> {
    /// Creates a typed query.
    pub fn new(column: impl Into<String>, low: K, high: K) -> Self {
        TypedQuery {
            column: column.into(),
            low,
            high,
        }
    }
}

/// A typed mutation in the key domain (mirror of
/// [`pi_core::mutation::Mutation`]).
#[derive(Debug, Clone, PartialEq)]
pub enum TypedMutation<K: TableKey> {
    /// Insert one row with this key.
    Insert(K),
    /// Delete one live row with exactly this key (rejected when none
    /// exists — for prefix domains the check is over full keys, not
    /// codes).
    Delete(K),
    /// Atomically replace one live row (`old` must exist).
    Update {
        /// The key to replace.
        old: K,
        /// Its replacement.
        new: K,
    },
}

/// The exact-match tie-break side path of one prefix-encoded column: the
/// full keys of every live row, grouped by code, each group sorted by
/// key order. Invariant: the multiset of codes here equals the inner
/// column's live multiset — every write goes through the typed layer,
/// which updates both under the exclusive lock.
type TieTable<K> = BTreeMap<u64, Vec<K>>;

/// A typed facade over [`Table`]: typed construction, typed serial
/// queries and mutations, and the tie-break state the
/// [`TypedExecutor`] shares. See the module docs for the full story.
pub struct TypedTable<K: TableKey> {
    inner: Arc<Table>,
    /// Per-column tie-break side tables; populated only for
    /// prefix-encoded key domains.
    ties: HashMap<String, RwLock<TieTable<K>>>,
    /// Queries whose answer needed a tie-break correction (a predicate
    /// boundary's truncated code tied rows outside the typed bounds) —
    /// `engine.tie_break_hits` when metrics are attached.
    tie_hits: Option<Arc<Counter>>,
}

/// Builder for [`TypedTable`].
pub struct TypedTableBuilder<K: TableKey> {
    specs: Vec<TypedColumnSpec<K>>,
    metrics: Option<Arc<MetricsRegistry>>,
}

impl<K: TableKey> Default for TypedTableBuilder<K> {
    fn default() -> Self {
        TypedTableBuilder {
            specs: Vec::new(),
            metrics: None,
        }
    }
}

impl<K: TableKey> TypedTableBuilder<K> {
    /// Adds a typed column.
    pub fn column(mut self, spec: TypedColumnSpec<K>) -> Self {
        self.specs.push(spec);
        self
    }

    /// Registers metrics in `registry`: the inner table's per-column
    /// `core.<column>.*` / `engine.rho.<column>.<shard>` families (see
    /// [`crate::table::TableBuilder::metrics`]) plus
    /// `engine.tie_break_hits`, counting queries whose answer took the
    /// prefix-encoded tie-break side path.
    pub fn metrics(mut self, registry: Arc<MetricsRegistry>) -> Self {
        self.metrics = Some(registry);
        self
    }

    /// Builds the typed table: every column's keys are encoded into the
    /// `u64` core (shard boundaries are therefore drawn in encoded
    /// space), and prefix-encoded domains get their tie-break side
    /// tables.
    ///
    /// # Panics
    /// Panics on duplicate column names (like [`Table::builder`]).
    pub fn build(self) -> TypedTable<K> {
        let mut builder = Table::builder();
        if let Some(registry) = &self.metrics {
            builder = builder.metrics(Arc::clone(registry));
        }
        let tie_hits = self
            .metrics
            .as_ref()
            .map(|registry| registry.counter("engine.tie_break_hits"));
        let mut ties = HashMap::new();
        for spec in self.specs {
            if K::PREFIX_ENCODED {
                // Bulk build: collect each code group, then sort it once
                // — per-key sorted insertion would be quadratic in group
                // size, and skewed domains (a hot shared prefix) put
                // most rows in one group.
                let mut table: TieTable<K> = BTreeMap::new();
                for key in &spec.keys {
                    table.entry(key.to_code()).or_default().push(key.clone());
                }
                for group in table.values_mut() {
                    group.sort_by(|a, b| a.key_cmp(b));
                }
                ties.insert(spec.name.clone(), RwLock::new(table));
            }
            let values: Vec<u64> = spec.keys.iter().map(TableKey::to_code).collect();
            builder = builder.column(
                ColumnSpec::new(spec.name, values)
                    .with_shards(spec.shards)
                    .with_policy(spec.policy)
                    .with_choice(spec.choice),
            );
        }
        TypedTable {
            inner: Arc::new(builder.build()),
            ties,
            tie_hits,
        }
    }
}

/// Inserts `key` into a sorted tie group, keeping the group sorted.
fn insert_sorted<K: TableKey>(group: &mut Vec<K>, key: K) {
    let at = group.partition_point(|k| k.key_cmp(&key) != Ordering::Greater);
    group.insert(at, key);
}

/// Rows tying a predicate boundary's code but falling outside the typed
/// bounds: everything in `low`'s code group ordered below `low`, plus
/// everything in `high`'s code group ordered above `high`. The groups
/// are sorted, so both counts are partition points.
fn boundary_overcount<K: TableKey>(table: &TieTable<K>, low: &K, high: &K) -> u64 {
    let mut over = 0u64;
    if let Some(group) = table.get(&low.to_code()) {
        over += group.partition_point(|k| k.key_cmp(low) == Ordering::Less) as u64;
    }
    if let Some(group) = table.get(&high.to_code()) {
        let not_above = group.partition_point(|k| k.key_cmp(high) != Ordering::Greater);
        over += (group.len() - not_above) as u64;
    }
    over
}

/// Builds the typed answer from a raw encoded scan, applying prefix
/// tie-break corrections when a side table is present. A non-zero
/// correction bumps `hits` (the `engine.tie_break_hits` counter).
fn typed_answer<K: TableKey>(
    raw: ScanResult,
    ties: Option<&TieTable<K>>,
    low: &K,
    high: &K,
    hits: Option<&Counter>,
) -> TypedResult<K> {
    let count = match ties {
        Some(table) => {
            let over = boundary_overcount(table, low, high);
            if over > 0 {
                if let Some(hits) = hits {
                    hits.inc();
                }
            }
            raw.count - over
        }
        None => raw.count,
    };
    TypedResult {
        count,
        sum: K::decode_sum(raw),
    }
}

impl<K: TableKey> TypedTable<K> {
    /// Starts building a typed table.
    pub fn builder() -> TypedTableBuilder<K> {
        TypedTableBuilder::default()
    }

    /// The underlying `u64` table (attach an [`Executor`] to it through
    /// [`TypedExecutor`], or inspect shard state directly).
    pub fn inner(&self) -> &Arc<Table> {
        &self.inner
    }

    /// Whether this table's key domain supports SUM digests
    /// ([`TableKey::SUM_SUPPORTED`] — the capability gate).
    pub fn sum_supported(&self) -> bool {
        K::SUM_SUPPORTED
    }

    /// `SELECT COUNT(col)[, SUM(col)] WHERE col BETWEEN low AND high`
    /// under the key domain's total order, served serially. Returns
    /// `None` for an unknown column.
    pub fn query(&self, column: &str, low: &K, high: &K) -> Option<TypedResult<K>> {
        let sharded = self.inner.column(column)?;
        if low.key_cmp(high) == Ordering::Greater {
            return Some(TypedResult::empty());
        }
        let guard = self.read_ties(column);
        let raw = sharded.query(low.to_code(), high.to_code());
        Some(typed_answer(
            raw,
            guard.as_deref(),
            low,
            high,
            self.tie_hits.as_deref(),
        ))
    }

    /// Applies a batch of typed mutations to `column` in request order,
    /// serially (the writer analogue of [`TypedTable::query`]; the
    /// [`TypedExecutor`] offers the shard-parallel path). Returns the
    /// per-mutation applied flags, or `None` for an unknown column.
    pub fn apply_mutations(
        &self,
        column: &str,
        mutations: &[TypedMutation<K>],
    ) -> Option<Vec<bool>> {
        let sharded = self.inner.column(column)?;
        Some(self.run_mutations(column, mutations, |ops| sharded.apply_mutations(ops)))
    }

    /// Shared typed-mutation path: validates and translates the batch —
    /// updating the tie-break table for prefix domains under its
    /// exclusive lock — and hands the accepted inner mutations to
    /// `apply` (serial column writes here, executor waves in
    /// [`TypedExecutor::apply_mutations`]).
    fn run_mutations(
        &self,
        column: &str,
        mutations: &[TypedMutation<K>],
        apply: impl FnOnce(&[Mutation]) -> Vec<bool>,
    ) -> Vec<bool> {
        if !K::PREFIX_ENCODED {
            let inner: Vec<Mutation> = mutations.iter().map(translate_exact).collect();
            return apply(&inner);
        }
        let mut ties = self
            .ties
            .get(column)
            .expect("prefix column has a tie table")
            .write()
            .expect("tie table poisoned");
        let mut applied = vec![false; mutations.len()];
        let mut accepted: Vec<(usize, Mutation)> = Vec::with_capacity(mutations.len());
        for (i, m) in mutations.iter().enumerate() {
            let translated = match m {
                TypedMutation::Insert(k) => {
                    insert_sorted(ties.entry(k.to_code()).or_default(), k.clone());
                    Some(Mutation::Insert(k.to_code()))
                }
                TypedMutation::Delete(k) => {
                    remove_exact(&mut ties, k).then(|| Mutation::Delete(k.to_code()))
                }
                TypedMutation::Update { old, new } => remove_exact(&mut ties, old).then(|| {
                    insert_sorted(ties.entry(new.to_code()).or_default(), new.clone());
                    Mutation::Update {
                        old: old.to_code(),
                        new: new.to_code(),
                    }
                }),
            };
            if let Some(op) = translated {
                applied[i] = true;
                accepted.push((i, op));
            }
        }
        let inner_ops: Vec<Mutation> = accepted.iter().map(|&(_, m)| m).collect();
        let inner_applied = apply(&inner_ops);
        // The tie table mirrors the inner live multiset of codes, so a
        // mutation it validated must also apply inside.
        for (&(i, _), ok) in accepted.iter().zip(&inner_applied) {
            debug_assert!(ok, "tie table and inner column diverged");
            applied[i] = *ok;
        }
        applied
    }

    /// The shared read guard over a column's tie table (`None` for exact
    /// domains, which keep no side state).
    fn read_ties(&self, column: &str) -> Option<RwLockReadGuard<'_, TieTable<K>>> {
        self.ties
            .get(column)
            .map(|lock| lock.read().expect("tie table poisoned"))
    }
}

/// Translates an exact-domain typed mutation (codes never tie, so the
/// inner validation is the typed validation).
fn translate_exact<K: TableKey>(m: &TypedMutation<K>) -> Mutation {
    match m {
        TypedMutation::Insert(k) => Mutation::Insert(k.to_code()),
        TypedMutation::Delete(k) => Mutation::Delete(k.to_code()),
        TypedMutation::Update { old, new } => Mutation::Update {
            old: old.to_code(),
            new: new.to_code(),
        },
    }
}

/// Removes one occurrence of exactly `key` from its tie group; `false`
/// when no live row has that full key.
fn remove_exact<K: TableKey>(table: &mut TieTable<K>, key: &K) -> bool {
    let code = key.to_code();
    let Some(group) = table.get_mut(&code) else {
        return false;
    };
    let at = group.partition_point(|k| k.key_cmp(key) == Ordering::Less);
    if at >= group.len() || group[at].key_cmp(key) != Ordering::Equal {
        return false;
    }
    group.remove(at);
    if group.is_empty() {
        table.remove(&code);
    }
    true
}

/// A typed facade over the shard-parallel [`Executor`]: typed query
/// batches and typed mutation batches, served on the executor's
/// persistent pool with answers corrected back into the key domain.
pub struct TypedExecutor<K: TableKey> {
    table: Arc<TypedTable<K>>,
    executor: Executor,
}

impl<K: TableKey> TypedExecutor<K> {
    /// Creates a typed executor with default [`ExecutorConfig`].
    pub fn new(table: Arc<TypedTable<K>>) -> Self {
        Self::with_config(table, ExecutorConfig::default())
    }

    /// Creates a typed executor with an explicit configuration, spawning
    /// the persistent worker pool.
    pub fn with_config(table: Arc<TypedTable<K>>, config: ExecutorConfig) -> Self {
        let executor = Executor::with_config(Arc::clone(table.inner()), config);
        TypedExecutor { table, executor }
    }

    /// Creates a typed executor reporting `executor.*` and `sched.pool.*`
    /// metrics into `registry` (see [`Executor::with_metrics`]). Pair
    /// with [`TypedTableBuilder::metrics`] on the same registry.
    pub fn with_metrics(
        table: Arc<TypedTable<K>>,
        config: ExecutorConfig,
        registry: Arc<MetricsRegistry>,
    ) -> Self {
        let executor = Executor::with_metrics(Arc::clone(table.inner()), config, registry);
        TypedExecutor { table, executor }
    }

    /// The typed table this executor serves.
    pub fn table(&self) -> &Arc<TypedTable<K>> {
        &self.table
    }

    /// The underlying `u64` executor (maintenance, pool stats).
    pub fn executor(&self) -> &Executor {
        &self.executor
    }

    /// Executes a batch of typed range queries, shard-parallel on the
    /// pool. Results come back in request order, exact over the key
    /// domain's total order at every refinement stage.
    ///
    /// For prefix-encoded domains the tie tables of every queried column
    /// are held shared across the inner execution and the corrections,
    /// so concurrent typed writers cannot slide the two structures apart
    /// under one batch.
    pub fn execute_batch(
        &self,
        queries: &[TypedQuery<K>],
    ) -> Result<Vec<TypedResult<K>>, EngineError> {
        // Resolve every column name up front, so an unknown column fails
        // the whole batch no matter how the bounds are ordered (the
        // inverted-range short-circuit below must not mask a typo).
        for q in queries {
            if self.table.inner().column_index(&q.column).is_none() {
                return Err(EngineError::UnknownColumn(q.column.clone()));
            }
        }
        // Hold the tie tables of all involved prefix columns, in sorted
        // (deterministic) order, for the whole batch.
        let mut guards: Vec<(&str, RwLockReadGuard<'_, TieTable<K>>)> = Vec::new();
        if K::PREFIX_ENCODED {
            let mut columns: Vec<&str> = queries.iter().map(|q| q.column.as_str()).collect();
            columns.sort_unstable();
            columns.dedup();
            for column in columns {
                if let Some(guard) = self.table.read_ties(column) {
                    guards.push((column, guard));
                }
            }
        }
        // `low > high` is the typed empty range; it must not reach the
        // encoded layer, where prefix truncation could make the codes
        // tie and return rows.
        let mut inner_batch = Vec::with_capacity(queries.len());
        let mut slot_of = Vec::with_capacity(queries.len());
        for q in queries {
            if q.low.key_cmp(&q.high) == Ordering::Greater {
                slot_of.push(None);
            } else {
                slot_of.push(Some(inner_batch.len()));
                inner_batch.push(TableQuery::new(
                    q.column.clone(),
                    q.low.to_code(),
                    q.high.to_code(),
                ));
            }
        }
        let raw = self.executor.execute_batch(&inner_batch)?;
        let results = queries
            .iter()
            .zip(&slot_of)
            .map(|(q, slot)| match slot {
                None => TypedResult::empty(),
                Some(at) => {
                    let ties = guards
                        .iter()
                        .find(|(name, _)| *name == q.column)
                        .map(|(_, guard)| &**guard);
                    typed_answer(
                        raw[*at],
                        ties,
                        &q.low,
                        &q.high,
                        self.table.tie_hits.as_deref(),
                    )
                }
            })
            .collect();
        Ok(results)
    }

    /// Executes a single typed query (a batch of one).
    pub fn execute_one(
        &self,
        column: &str,
        low: K,
        high: K,
    ) -> Result<TypedResult<K>, EngineError> {
        Ok(self
            .execute_batch(std::slice::from_ref(&TypedQuery::new(column, low, high)))?
            .remove(0))
    }

    /// Applies a batch of typed mutations through the executor's
    /// shard-parallel mutation waves. Returns per-mutation applied flags
    /// in request order; for prefix domains the exclusive tie-table lock
    /// is held across validation and the inner waves.
    pub fn apply_mutations(
        &self,
        column: &str,
        mutations: &[TypedMutation<K>],
    ) -> Result<Vec<bool>, EngineError> {
        // Surface unknown columns as the executor error, before touching
        // any typed state.
        if self.table.inner().column_index(column).is_none() {
            return Err(EngineError::UnknownColumn(column.to_string()));
        }
        Ok(self.table.run_mutations(column, mutations, |ops| {
            self.executor
                .apply_mutations(column, ops)
                .expect("column resolved above")
        }))
    }

    /// Drives every shard to convergence (see
    /// [`Executor::drive_to_convergence`]).
    pub fn drive_to_convergence(&self, max_steps: usize) -> usize {
        self.executor.drive_to_convergence(max_steps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Ground-truth count over a slice of keys, by key order.
    fn oracle_count<K: TableKey>(keys: &[K], low: &K, high: &K) -> u64 {
        keys.iter()
            .filter(|k| k.key_cmp(low) != Ordering::Less && k.key_cmp(high) != Ordering::Greater)
            .count() as u64
    }

    #[test]
    fn f64_column_counts_match_oracle_and_gate_sum() {
        let keys: Vec<f64> = (0..5_000)
            .map(|i| ((i * 37) % 5_000) as f64 * 0.5 - 1_250.0)
            .collect();
        let table = TypedTable::builder()
            .column(TypedColumnSpec::new("x", keys.clone()).with_shards(4))
            .build();
        assert!(!table.sum_supported());
        for (low, high) in [
            (-100.0, 100.0),
            (-1_250.0, -1_000.25),
            (0.0, 0.0),
            (5.0, -5.0),
        ] {
            let r = table.query("x", &low, &high).unwrap();
            assert_eq!(r.count, oracle_count(&keys, &low, &high), "[{low}, {high}]");
            assert_eq!(r.sum, None, "float SUM must be capability-gated off");
        }
        assert!(table.query("missing", &0.0, &1.0).is_none());
    }

    #[test]
    fn f64_special_values_follow_the_total_order_policy() {
        let keys = vec![f64::NEG_INFINITY, -0.0, 0.0, 1.5, f64::INFINITY, f64::NAN];
        let table = TypedTable::builder()
            .column(TypedColumnSpec::new("x", keys).with_shards(2))
            .build();
        let q = |low: f64, high: f64| table.query("x", &low, &high).unwrap().count;
        // -0.0 and +0.0 are distinct adjacent keys.
        assert_eq!(q(-0.0, -0.0), 1);
        assert_eq!(q(0.0, 0.0), 1);
        assert_eq!(q(-0.0, 0.0), 2);
        // NaN sorts above +inf, as one key.
        assert_eq!(q(f64::NAN, f64::NAN), 1);
        assert_eq!(q(f64::INFINITY, f64::NAN), 2);
        // The whole total order.
        assert_eq!(q(f64::NEG_INFINITY, f64::NAN), 6);
    }

    #[test]
    fn i64_sums_decode_through_the_affine_shift() {
        let keys: Vec<i64> = (-2_000..2_000).map(|i| (i * 13) % 2_000).collect();
        let table = TypedTable::builder()
            .column(TypedColumnSpec::new("x", keys.clone()).with_shards(4))
            .build();
        assert!(table.sum_supported());
        for (low, high) in [(-1_500i64, -3), (-10, 10), (i64::MIN, i64::MAX)] {
            let r = table.query("x", &low, &high).unwrap();
            let expected: i128 = keys
                .iter()
                .filter(|&&k| k >= low && k <= high)
                .map(|&k| k as i128)
                .sum();
            assert_eq!(r.count, oracle_count(&keys, &low, &high));
            assert_eq!(r.sum, Some(expected), "[{low}, {high}]");
        }
    }

    #[test]
    fn string_boundary_ties_are_broken_exactly() {
        // All of these share 8-byte prefixes pairwise in interesting ways.
        let keys: Vec<String> = [
            "",
            "a",
            "a\u{0}b",
            "apple",
            "applesauce",
            "applesXXX",
            "appletree",
            "banana",
            "bananabread",
            "émile",
            "émilie",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let table = TypedTable::builder()
            .column(TypedColumnSpec::new("s", keys.clone()).with_shards(2))
            .build();
        assert!(!table.sum_supported());
        let cases = [
            ("", "zzzz"),
            ("applesauce", "applesauce"), // exact hit beyond the prefix
            ("apples", "appleturnover"),  // both bounds tie prefixes
            ("a", "a"),
            ("", ""),
            ("banana", "bananabread"),
            ("émilf", "émilz"), // non-ASCII boundaries
            ("b", "a"),         // typed empty range
        ];
        for (low, high) in cases {
            let (low, high) = (low.to_string(), high.to_string());
            let r = table.query("s", &low, &high).unwrap();
            assert_eq!(
                r.count,
                oracle_count(&keys, &low, &high),
                "[{low:?}, {high:?}]"
            );
            assert_eq!(r.sum, None);
        }
    }

    #[test]
    fn string_mutations_validate_over_full_keys() {
        let keys: Vec<String> = ["applesauce", "appletree", "plum"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let table = TypedTable::builder()
            .column(TypedColumnSpec::new("s", keys).with_shards(2))
            .build();
        let all = |t: &TypedTable<String>| {
            t.query("s", &String::new(), &"\u{10FFFF}".to_string())
                .unwrap()
                .count
        };
        assert_eq!(all(&table), 3);
        // "applesXXX" ties "applesauce"'s code but is not live: the
        // delete must be rejected on the full key, not the code.
        let applied = table
            .apply_mutations(
                "s",
                &[
                    TypedMutation::Delete("applesXXX".to_string()),
                    TypedMutation::Delete("applesauce".to_string()),
                    TypedMutation::Insert("applesXXX".to_string()),
                    TypedMutation::Update {
                        old: "plum".to_string(),
                        new: "prune".to_string(),
                    },
                    TypedMutation::Update {
                        old: "plum".to_string(), // no longer live
                        new: "pear".to_string(),
                    },
                ],
            )
            .unwrap();
        assert_eq!(applied, vec![false, true, true, true, false]);
        assert_eq!(all(&table), 3);
        let hit = |s: &str| {
            table
                .query("s", &s.to_string(), &s.to_string())
                .unwrap()
                .count
        };
        assert_eq!(hit("applesauce"), 0);
        assert_eq!(hit("applesXXX"), 1);
        assert_eq!(hit("prune"), 1);
        assert_eq!(hit("plum"), 0);
    }

    #[test]
    fn str_prefix_columns_are_exact_without_tie_tables() {
        let keys: Vec<StrPrefix> = ["ant", "bee", "cat", "dog"]
            .iter()
            .map(|s| StrPrefix::new(s))
            .collect();
        let table = TypedTable::builder()
            .column(TypedColumnSpec::new("p", keys).with_shards(2))
            .build();
        assert!(table.ties.is_empty(), "exact domains keep no side state");
        let r = table
            .query("p", &StrPrefix::new("b"), &StrPrefix::new("cz"))
            .unwrap();
        assert_eq!(r.count, 2); // bee, cat
    }

    #[test]
    fn empty_typed_column_answers_empty() {
        let table = TypedTable::builder()
            .column(TypedColumnSpec::new("x", Vec::<f64>::new()).with_shards(3))
            .build();
        let r = table.query("x", &f64::NEG_INFINITY, &f64::NAN).unwrap();
        assert_eq!(r, TypedResult::empty());
        // u64 empty columns still report the zero SUM (capability kept).
        let table = TypedTable::builder()
            .column(TypedColumnSpec::new("x", Vec::<u64>::new()).with_shards(3))
            .build();
        let r = table.query("x", &0, &u64::MAX).unwrap();
        assert_eq!(r.count, 0);
        assert_eq!(r.sum, Some(0));
    }
}
