//! Multi-column tables whose columns are range-sharded progressive
//! indexes.
//!
//! A [`Table`] owns a set of named columns. Each column is split into N
//! value-range shards (via [`pi_storage::shard::RangePartition`]); every
//! shard owns its **own** progressive index over its slice of the rows, so
//!
//! * indexing work on different shards can proceed in parallel,
//! * a range query only visits the shards whose value range overlaps the
//!   predicate, and
//! * each shard converges independently towards its B+-tree, preserving
//!   the paper's deterministic-convergence property per shard.
//!
//! The indexing algorithm is chosen **per column** through the paper's
//! Figure-11 decision tree ([`pi_core::decision::recommend`]) from the
//! estimated data distribution and an optional query-shape hint, or pinned
//! explicitly.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use pi_core::budget::BudgetPolicy;
use pi_core::decision::{recommend, Algorithm, DataDistribution, QueryShape, Scenario};
use pi_core::metrics::IndexMetrics;
use pi_core::mutation::{MergeHook, MutableConfig, MutableIndex, Mutation};
use pi_core::result::{IndexStatus, Phase};
use pi_obs::{Gauge, MetricsRegistry};
use pi_storage::delta::DeltaSidecar;
use pi_storage::digest::DigestTree;
use pi_storage::scan::ScanResult;
use pi_storage::shard::{sample_values, RangePartition};
use pi_storage::{Column, Value};

use pi_core::tuning::TuningParameters;
use pi_sched::Pool;

use crate::stats::{estimate_distribution, estimate_distribution_pooled, WorkloadStats};

/// How a column's indexing algorithm is selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlgorithmChoice {
    /// Walk the Figure-11 decision tree with the given query-shape hint
    /// and the distribution estimated from the data
    /// ([`estimate_distribution`]).
    Auto(QueryShape),
    /// Use this algorithm on every shard of the column.
    Fixed(Algorithm),
}

impl Default for AlgorithmChoice {
    fn default() -> Self {
        AlgorithmChoice::Auto(QueryShape::Unknown)
    }
}

/// Specification of one column of a [`Table`].
#[derive(Debug, Clone)]
pub struct ColumnSpec {
    /// Column name used to address queries.
    pub name: String,
    /// The column's values, in row order.
    pub values: Vec<Value>,
    /// Number of range shards.
    pub shards: usize,
    /// Per-shard indexing budget policy.
    pub policy: BudgetPolicy,
    /// Algorithm selection.
    pub choice: AlgorithmChoice,
    /// Kernel tuning constants handed to every shard's index. Defaults to
    /// the machine-calibrated set ([`TuningParameters::calibrated`]);
    /// result-neutral in either case (see [`pi_core::tuning`]).
    pub tuning: TuningParameters,
}

impl ColumnSpec {
    /// A column with decision-tree algorithm selection and no query-shape
    /// hint.
    pub fn new(name: impl Into<String>, values: Vec<Value>) -> Self {
        ColumnSpec {
            name: name.into(),
            values,
            shards: 4,
            policy: BudgetPolicy::FixedDelta(0.25),
            choice: AlgorithmChoice::default(),
            tuning: TuningParameters::calibrated(),
        }
    }

    /// Sets the shard count (builder style).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Sets the per-shard budget policy (builder style).
    pub fn with_policy(mut self, policy: BudgetPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the algorithm selection (builder style).
    pub fn with_choice(mut self, choice: AlgorithmChoice) -> Self {
        self.choice = choice;
        self
    }

    /// Sets the kernel tuning constants (builder style). Pass
    /// [`TuningParameters::scalar`] to pin the reference scalar kernels.
    pub fn with_tuning(mut self, tuning: TuningParameters) -> Self {
        self.tuning = tuning;
        self
    }
}

/// One shard: a mutable progressive index ([`MutableIndex`]) over the rows
/// whose values fall into the shard's value range. Shards born empty start
/// converged; inserts can revive them (the mutable index grows a snapshot
/// from its pending-delta sidecar on the first merge).
pub struct Shard {
    index: MutableIndex,
}

impl Shard {
    fn new(
        column: Column,
        algorithm: Algorithm,
        policy: BudgetPolicy,
        tuning: TuningParameters,
    ) -> Self {
        Shard {
            index: MutableIndex::with_config(
                Arc::new(column),
                algorithm,
                policy,
                MutableConfig {
                    tuning,
                    ..MutableConfig::default()
                },
            ),
        }
    }

    /// Reassembles a shard from persisted parts (base snapshot + pending
    /// sidecar); see [`MutableIndex::from_parts`].
    fn from_parts(
        base: Arc<Column>,
        sidecar: DeltaSidecar,
        algorithm: Algorithm,
        policy: BudgetPolicy,
        tuning: TuningParameters,
    ) -> Self {
        Shard {
            index: MutableIndex::from_parts(
                base,
                sidecar,
                algorithm,
                policy,
                MutableConfig {
                    tuning,
                    ..MutableConfig::default()
                },
            ),
        }
    }

    /// Captures the shard's logical state as persistable parts; see
    /// [`MutableIndex::snapshot_parts`].
    pub fn snapshot_parts(&self) -> (Arc<Column>, DeltaSidecar) {
        self.index.snapshot_parts()
    }

    /// Number of live rows this shard owns (base snapshot net of pending
    /// mutations).
    pub fn rows(&self) -> usize {
        self.index.live_rows()
    }

    /// Answers `[low, high]` against this shard's live rows, performing
    /// the shard's per-query indexing work as a side effect.
    pub fn query(&mut self, low: Value, high: Value) -> ScanResult {
        self.index.query(low, high).scan_result()
    }

    /// Answers `[low, high]` against this shard's live rows **without**
    /// performing any indexing work (base snapshot + delta sidecars; see
    /// [`MutableIndex::peek`]). This is the conjunction planner's
    /// validation probe: exact at every refinement stage, and it never
    /// perturbs the refinement or merge schedule.
    pub fn peek(&self, low: Value, high: Value) -> ScanResult {
        self.index.peek(low, high)
    }

    /// Applies one mutation to this shard. Returns whether it took effect
    /// (deletes and updates are rejected when no live victim exists).
    pub fn apply(&mut self, mutation: &Mutation) -> bool {
        self.index.apply(mutation)
    }

    /// Performs one budgeted slice of indexing work without answering a
    /// query: inner refinement, or a step of the pending-delta merge (the
    /// paper's model performs indexing only as a query side effect, so
    /// maintenance is an empty query). Returns `true` when work was
    /// performed, `false` when the shard is converged **and** delta-free.
    pub fn advance(&mut self) -> bool {
        self.index.advance()
    }

    /// The shard's index status. A converged shard that was mutated
    /// afterwards reports `converged: false` until its deltas are merged —
    /// this is what makes a mutated converged shard re-enter maintenance.
    pub fn status(&self) -> IndexStatus {
        self.index.status()
    }

    /// The live values of this shard (used for boundary re-balancing).
    pub fn live_values(&self) -> Vec<Value> {
        self.index.live_values()
    }

    /// Attaches (or detaches) the shared per-column metric handles; see
    /// [`MutableIndex::set_metrics`].
    fn set_metrics(&mut self, metrics: Option<Arc<IndexMetrics>>) {
        self.index.set_metrics(metrics);
    }

    /// Attaches (or detaches) the merge-boundary callback; see
    /// [`MutableIndex::set_merge_hook`].
    fn set_merge_hook(&mut self, hook: Option<MergeHook>) {
        self.index.set_merge_hook(hook);
    }
}

/// Per-shard summary maintained under mutations: the shard's value bounds
/// and its full-shard live aggregate. Query answers are always exact over
/// the live rows regardless of indexing progress, so a predicate that
/// covers `[min, max]` entirely can be answered from `total` in O(1) — no
/// shard lock, no index probe (aggregate pushdown; wide queries only pay
/// real probes on their two boundary shards). Mutations update the totals
/// exactly and only ever *widen* `[min, max]` (a delete may leave the
/// bounds stale-wide, which costs shortcut opportunities but never
/// correctness).
#[derive(Debug, Clone, Copy)]
struct ShardDigest {
    /// Smallest / largest value the shard can hold (conservative under
    /// deletes; meaningless while the shard is empty).
    min: Value,
    max: Value,
    /// Exact `SUM`/`COUNT` over every live row of the shard.
    total: ScanResult,
}

impl ShardDigest {
    /// Folds one *applied* mutation into the digest.
    fn apply(&mut self, mutation: &Mutation) {
        match *mutation {
            Mutation::Insert(v) => {
                self.total.sum += v as u128;
                self.total.count += 1;
                self.widen(v);
            }
            Mutation::Delete(v) => {
                self.total = self.total.subtract(ScanResult {
                    sum: v as u128,
                    count: 1,
                });
            }
            Mutation::Update { old, new } => {
                self.total = self.total.subtract(ScanResult {
                    sum: old as u128,
                    count: 1,
                });
                self.total.sum += new as u128;
                self.total.count += 1;
                self.widen(new);
            }
        }
    }

    fn widen(&mut self, v: Value) {
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }
}

/// A named, range-sharded, progressively indexed, **mutable** column.
///
/// Reads and writes are isolated per shard: every shard sits behind its
/// own mutex, so a writer only ever blocks the readers (and writers) of
/// the one shard it touches. The shard digests powering the O(1)
/// covered-shard shortcut live behind per-shard `RwLock`s and are updated
/// exactly on every applied mutation.
pub struct ShardedColumn {
    name: String,
    rows: usize,
    domain: (Value, Value),
    algorithm: Algorithm,
    policy: BudgetPolicy,
    distribution: DataDistribution,
    /// Kernel tuning constants every shard's index was built with (and
    /// every rebuilt shard after a re-balance will be built with).
    tuning: TuningParameters,
    partition: RangePartition,
    /// Rows per shard **at construction / last re-balance** — the
    /// task-granularity weights the scheduler pins shards to workers by
    /// (no shard lock needed to read them). Live counts drift under
    /// mutations; see [`ShardedColumn::shard_live_rows`].
    shard_rows: Vec<usize>,
    digests: Vec<RwLock<ShardDigest>>,
    shards: Vec<Mutex<Shard>>,
    /// Per-shard "mutated since last converged-cache check" flags; lets a
    /// maintenance layer with a monotone converged cache (the executor)
    /// notice that a converged shard re-entered maintenance.
    shard_dirty: Vec<AtomicBool>,
    /// Bumped once per applied mutation batch; convergence latches compare
    /// against it so a mutation invalidates them race-free.
    mutation_epoch: AtomicU64,
    /// Per-shard applied-mutation counters, bumped **under the shard
    /// lock** (before it is released) whenever a mutation run touches the
    /// shard. They stamp derived per-shard artifacts — the aggregate
    /// cache's digest trees — so a stamp captured together with the
    /// shard's live values (also under the lock) stays valid exactly
    /// until the next write to that shard completes.
    shard_mutations: Vec<AtomicU64>,
    /// Lock-free per-shard ρ cache (f64 bits): refreshed from every
    /// `note_rho` site (query, maintenance, mutation), read by the
    /// conjunction planner without touching shard or digest locks.
    rho_cache: Vec<AtomicU64>,
    stats: WorkloadStats,
    /// Shared `core.<column>.*` counters, attached to every shard's index
    /// (see [`TableBuilder::metrics`]); `None` costs nothing.
    index_metrics: Option<Arc<IndexMetrics>>,
    /// Per-shard convergence gauges `engine.rho.<column>.<shard>` — the
    /// paper's ρ (fraction of the data fully indexed), refreshed whenever
    /// a shard performs indexing work or absorbs a mutation.
    rho: Option<Vec<Arc<Gauge>>>,
    /// Merge-boundary callback shared by every shard's index (the
    /// durability layer's checkpoint trigger); `None` costs nothing.
    merge_hook: Option<MergeHook>,
}

impl ShardedColumn {
    #[cfg(test)]
    fn from_spec(spec: ColumnSpec) -> Self {
        Self::from_spec_with_pool(spec, None)
    }

    /// [`ShardedColumn::from_spec`], optionally classifying the value
    /// distribution with the exact pooled histogram estimator
    /// ([`estimate_distribution_pooled`]) when a pool is available —
    /// columns at or above the tuning's parallel-count threshold get a
    /// full-column classification instead of a 4096-row sample.
    fn from_spec_with_pool(spec: ColumnSpec, pool: Option<&Pool>) -> Self {
        assert!(spec.shards > 0, "a column needs at least one shard");
        let distribution = match pool {
            Some(pool) => estimate_distribution_pooled(&spec.values, pool, &spec.tuning),
            None => estimate_distribution(&spec.values),
        };
        let algorithm = match spec.choice {
            AlgorithmChoice::Fixed(a) => a,
            AlgorithmChoice::Auto(shape) => recommend(Scenario {
                query_shape: shape,
                distribution,
                extra_memory_allowed: true,
            }),
        };
        let column = Column::from_vec(spec.values);
        let partition = RangePartition::equi_depth(column.data(), spec.shards);
        Self::build(
            spec.name,
            column,
            partition,
            algorithm,
            spec.policy,
            distribution,
            spec.tuning,
        )
    }

    /// Shared constructor for the initial build and re-balances.
    fn build(
        name: String,
        column: Column,
        partition: RangePartition,
        algorithm: Algorithm,
        policy: BudgetPolicy,
        distribution: DataDistribution,
        tuning: TuningParameters,
    ) -> Self {
        let rows = column.len();
        let domain = column.domain().unwrap_or((0, 0));
        let sub_columns = partition.split_column(&column);
        let shard_rows: Vec<usize> = sub_columns.iter().map(Column::len).collect();
        let digests = sub_columns
            .iter()
            .map(|sub| {
                RwLock::new(ShardDigest {
                    min: sub.min(),
                    max: sub.max(),
                    total: ScanResult {
                        sum: sub.data().iter().map(|&v| v as u128).sum(),
                        count: sub.len() as u64,
                    },
                })
            })
            .collect();
        let shard_dirty: Vec<AtomicBool> =
            sub_columns.iter().map(|_| AtomicBool::new(false)).collect();
        let shard_mutations = sub_columns.iter().map(|_| AtomicU64::new(0)).collect();
        let rho_cache = sub_columns.iter().map(|_| AtomicU64::new(0)).collect();
        let shards: Vec<Mutex<Shard>> = sub_columns
            .into_iter()
            .map(|sub| Mutex::new(Shard::new(sub, algorithm, policy, tuning)))
            .collect();
        let column = ShardedColumn {
            name,
            rows,
            domain,
            algorithm,
            policy,
            distribution,
            tuning,
            partition,
            shard_rows,
            digests,
            shards,
            shard_dirty,
            mutation_epoch: AtomicU64::new(0),
            shard_mutations,
            rho_cache,
            stats: WorkloadStats::new(),
            index_metrics: None,
            rho: None,
            merge_hook: None,
        };
        column.seed_rho_cache();
        column
    }

    /// Seeds the lock-free ρ cache from the current shard statuses (locks
    /// are uncontended at construction time).
    fn seed_rho_cache(&self) {
        for (s, shard) in self.shards.iter().enumerate() {
            let guard = shard.lock().expect("shard lock poisoned");
            self.note_rho(s, &guard);
        }
    }

    /// Reassembles a column from persisted parts: the shard boundaries
    /// plus each shard's base snapshot and pending sidecar (the state
    /// [`ShardedColumn::snapshot_state`] captures). Indexing progress
    /// restarts at the creation phase; the live multiset — and therefore
    /// every query answer — is exactly what was captured.
    ///
    /// `boundaries` must be strictly ascending and `shards` must hold
    /// exactly `boundaries.len() + 1` entries (the snapshot codec
    /// validates both).
    pub(crate) fn restore(
        name: String,
        algorithm: Algorithm,
        policy: BudgetPolicy,
        boundaries: Vec<Value>,
        shard_states: Vec<(Arc<Column>, DeltaSidecar)>,
        tuning: TuningParameters,
    ) -> Self {
        assert_eq!(
            shard_states.len(),
            boundaries.len() + 1,
            "shard count must match the partition"
        );
        let partition = RangePartition::from_boundaries(boundaries);
        // The estimated distribution only steers algorithm *advice*
        // (`recommended_algorithm`), never answers, so a bounded sample
        // of the persisted state is plenty.
        let mut sampled: Vec<Value> = Vec::new();
        for (base, sidecar) in &shard_states {
            sampled.extend(sample_values(base.data(), 1024));
            sampled.extend(sample_values(sidecar.inserts(), 256));
        }
        let distribution = estimate_distribution(&sampled);
        let shards: Vec<Mutex<Shard>> = shard_states
            .into_iter()
            .map(|(base, sidecar)| {
                Mutex::new(Shard::from_parts(base, sidecar, algorithm, policy, tuning))
            })
            .collect();
        let digests: Vec<RwLock<ShardDigest>> = shards
            .iter()
            .map(|shard| {
                let guard = shard.lock().expect("shard lock poisoned");
                let (base, sidecar) = guard.snapshot_parts();
                let mut digest = ShardDigest {
                    min: base.min(),
                    max: base.max(),
                    total: guard.index.live_total(),
                };
                // Pending inserts may lie outside the base bounds; widen
                // like the live path would have (sorted run: first/last).
                if let (Some(&lo), Some(&hi)) =
                    (sidecar.inserts().first(), sidecar.inserts().last())
                {
                    digest.widen(lo);
                    digest.widen(hi);
                }
                RwLock::new(digest)
            })
            .collect();
        let shard_rows: Vec<usize> = digests
            .iter()
            .map(|d| d.read().expect("digest lock poisoned").total.count as usize)
            .collect();
        let rows = shard_rows.iter().sum();
        let domain = digests
            .iter()
            .map(|d| d.read().expect("digest lock poisoned"))
            .filter(|d| d.total.count > 0)
            .fold(None, |acc: Option<(Value, Value)>, d| match acc {
                None => Some((d.min, d.max)),
                Some((lo, hi)) => Some((lo.min(d.min), hi.max(d.max))),
            })
            .unwrap_or((0, 0));
        let shard_dirty: Vec<AtomicBool> = shards.iter().map(|_| AtomicBool::new(false)).collect();
        let shard_mutations = shards.iter().map(|_| AtomicU64::new(0)).collect();
        let rho_cache = shards.iter().map(|_| AtomicU64::new(0)).collect();
        let column = ShardedColumn {
            name,
            rows,
            domain,
            algorithm,
            policy,
            distribution,
            tuning,
            partition,
            shard_rows,
            digests,
            shards,
            shard_dirty,
            mutation_epoch: AtomicU64::new(0),
            shard_mutations,
            rho_cache,
            stats: WorkloadStats::new(),
            index_metrics: None,
            rho: None,
            merge_hook: None,
        };
        column.seed_rho_cache();
        column
    }

    /// Captures the column's persistable state: the partition boundaries
    /// and each shard's base snapshot plus pending sidecar. Callers
    /// wanting a consistent whole-column snapshot must exclude writers
    /// while capturing (the durability layer quiesces them).
    pub fn snapshot_state(&self) -> (Vec<Value>, Vec<(Arc<Column>, DeltaSidecar)>) {
        let boundaries = self.partition.boundaries().to_vec();
        let shards = self
            .shards
            .iter()
            .map(|s| s.lock().expect("shard lock poisoned").snapshot_parts())
            .collect();
        (boundaries, shards)
    }

    /// Attaches the merge-boundary callback to every shard's index (the
    /// durability layer's checkpoint trigger; fires with the shard's
    /// completed-merge count whenever a pending-delta merge completes).
    pub(crate) fn attach_merge_hook(&mut self, hook: MergeHook) {
        self.merge_hook = Some(hook);
        for shard in &self.shards {
            shard
                .lock()
                .expect("shard lock poisoned")
                .set_merge_hook(self.merge_hook.clone());
        }
    }

    /// Registers this column's convergence and indexing-work metrics in
    /// `registry` and attaches them to every shard:
    ///
    /// * `core.<column>.*` — refinement steps, δ·N bytes moved, merge
    ///   steps and cost-model error, aggregated over the shards (see
    ///   [`IndexMetrics::register`]).
    /// * `engine.rho.<column>.<shard>` — each shard's ρ, the paper's
    ///   convergence measure ([`IndexStatus::fraction_indexed`]).
    ///
    /// Called by [`TableBuilder::build`] before the table is shared (and
    /// by recovery, which rebuilds columns outside the builder).
    pub(crate) fn attach_metrics(&mut self, registry: &MetricsRegistry) {
        let scope = pi_obs::sanitize_component(&self.name);
        self.index_metrics = Some(IndexMetrics::register(registry, &self.name));
        self.rho = Some(
            (0..self.shards.len())
                .map(|s| registry.gauge(&format!("engine.rho.{scope}.{s}")))
                .collect(),
        );
        self.reattach_metrics();
    }

    /// Pushes the column's metric handles and merge hook into every shard
    /// and seeds the ρ gauges from the current statuses (also used after
    /// a re-balance, which rebuilds the shards from scratch).
    fn reattach_metrics(&mut self) {
        for (s, shard) in self.shards.iter().enumerate() {
            let mut guard = shard.lock().expect("shard lock poisoned");
            guard.set_metrics(self.index_metrics.clone());
            guard.set_merge_hook(self.merge_hook.clone());
            if let Some(rho) = &self.rho {
                rho[s].set(guard.status().fraction_indexed);
            }
        }
    }

    /// Refreshes shard `shard`'s lock-free ρ cache — and its gauge, when
    /// metrics are attached — from a held shard guard.
    #[inline]
    fn note_rho(&self, shard: usize, guard: &Shard) {
        let fraction = guard.status().fraction_indexed;
        self.rho_cache[shard].store(fraction.to_bits(), Ordering::Relaxed);
        if let Some(rho) = &self.rho {
            rho[shard].set(fraction);
        }
    }

    /// Column name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of rows at construction (or the last re-balance). Mutations
    /// move the live count; see [`ShardedColumn::live_rows`].
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Current number of live rows, summed from the per-shard digests
    /// (no shard locks taken).
    pub fn live_rows(&self) -> usize {
        self.digests
            .iter()
            .map(|d| d.read().expect("digest lock poisoned").total.count as usize)
            .sum()
    }

    /// The `[min, max]` value domain of the column (`(0, 0)` when empty).
    pub fn domain(&self) -> (Value, Value) {
        self.domain
    }

    /// The algorithm running on every shard of this column.
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// The per-shard indexing budget policy of this column.
    pub fn policy(&self) -> BudgetPolicy {
        self.policy
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard boundaries partition.
    pub fn partition(&self) -> &RangePartition {
        &self.partition
    }

    /// Rows owned by each shard at construction (or the last re-balance).
    /// The scheduler weights shard tasks by these counts when pinning
    /// shards to pool workers; live counts drift under mutations
    /// ([`ShardedColumn::shard_live_rows`]).
    pub fn shard_rows(&self) -> &[usize] {
        &self.shard_rows
    }

    /// Current live rows per shard, from the digests (no shard locks).
    pub fn shard_live_rows(&self) -> Vec<usize> {
        self.digests
            .iter()
            .map(|d| d.read().expect("digest lock poisoned").total.count as usize)
            .collect()
    }

    /// Live-row weight drift across shards: `1.0` is perfectly balanced;
    /// values past an operational threshold (≈ `2.0`) call for
    /// [`Table::rebalance_if_drifted`].
    pub fn weight_drift(&self) -> f64 {
        RangePartition::weight_drift(&self.shard_live_rows())
    }

    /// The column's observed workload statistics.
    pub fn stats(&self) -> &WorkloadStats {
        &self.stats
    }

    /// Re-walks the Figure-11 decision tree with the *observed* workload
    /// shape (from [`ShardedColumn::stats`]) and the distribution estimated
    /// at build time.
    ///
    /// Algorithm selection happens once, at construction, when no queries
    /// have been observed; this reports what the tree would choose now, so
    /// an operator (or a future re-indexing PR) can detect drift between
    /// the running algorithm ([`ShardedColumn::algorithm`]) and the
    /// workload actually being served.
    pub fn recommended_algorithm(&self) -> Algorithm {
        recommend(self.stats.scenario(self.distribution, true))
    }

    /// The contiguous shard range a `[low, high]` predicate must visit.
    pub fn overlapping(&self, low: Value, high: Value) -> std::ops::Range<usize> {
        self.partition.overlapping(low, high)
    }

    /// Locks shard `shard` and answers `[low, high]` against it.
    ///
    /// Used by the executor's parallel fan-out; prefer
    /// [`ShardedColumn::query`] for the serial path.
    pub fn query_shard(&self, shard: usize, low: Value, high: Value) -> ScanResult {
        let mut guard = self.shards[shard].lock().expect("shard lock poisoned");
        let result = guard.query(low, high);
        self.note_rho(shard, &guard);
        result
    }

    /// O(1) answer for shard `shard` when the predicate covers every value
    /// the shard can hold (or the shard is empty): the maintained
    /// full-shard live aggregate, read under a brief digest lock — no
    /// shard mutex, no index probe. `None` means the shard must be probed
    /// through [`ShardedColumn::query_shard`]. Exactness does not depend
    /// on indexing progress — mutations update the digest atomically with
    /// the shard they apply to — but the skipped shard performs no
    /// per-query indexing work, so callers must converge it some other way
    /// (the executor's maintenance floor and idle cycles do; the serial
    /// [`ShardedColumn::query`] therefore does not use this shortcut).
    pub fn covered_total(&self, shard: usize, low: Value, high: Value) -> Option<ScanResult> {
        let digest = self.digests[shard].read().expect("digest lock poisoned");
        if digest.total.count == 0 {
            Some(ScanResult::EMPTY)
        } else if low <= digest.min && digest.max <= high {
            Some(digest.total)
        } else {
            None
        }
    }

    /// Answers `[low, high]` by visiting the overlapping shards serially
    /// and merging the partial results. Records the query in the column's
    /// workload statistics.
    ///
    /// This serial path deliberately does *not* take the
    /// [`ShardedColumn::covered_total`] shortcut: with no maintenance
    /// machinery at this layer, skipping the per-query indexing side
    /// effect would leave fully covered shards unconverged forever under
    /// query-only traffic. The executor, whose maintenance floor
    /// guarantees convergence independently of queries, is the shortcut's
    /// intended user.
    pub fn query(&self, low: Value, high: Value) -> ScanResult {
        self.stats.record(low, high);
        let mut merged = ScanResult::EMPTY;
        for shard in self.overlapping(low, high) {
            merged = merged.merge(self.query_shard(shard, low, high));
        }
        merged
    }

    /// Performs one maintenance step on shard `shard`; returns `true` when
    /// indexing work was performed.
    pub fn advance_shard(&self, shard: usize) -> bool {
        self.advance_shard_by(shard, 1) > 0
    }

    /// Performs up to `steps` maintenance steps on shard `shard` under a
    /// single lock acquisition; returns the steps actually performed
    /// (stops early at convergence). Batching matters to background
    /// maintenance: with N shards each budgeted step is ~N× smaller, and
    /// taking the shard lock per step would multiply the lock round-trips
    /// — and the contention with serving threads — by N.
    pub fn advance_shard_by(&self, shard: usize, steps: usize) -> usize {
        let mut guard = self.shards[shard].lock().expect("shard lock poisoned");
        let mut performed = 0;
        while performed < steps && guard.advance() {
            performed += 1;
        }
        if performed > 0 {
            self.note_rho(shard, &guard);
        }
        performed
    }

    /// The shard a single-value mutation (insert, delete) routes to.
    pub fn shard_of(&self, v: Value) -> usize {
        self.partition.shard_of(v)
    }

    /// Applies a run of mutations to one shard, in order, under a single
    /// shard-lock acquisition. Returns the per-mutation applied flags (in
    /// the run's order). The shard's digest is updated exactly for every
    /// applied mutation before the shard lock is released, and the shard
    /// is marked dirty so converged-shard caches re-examine it.
    ///
    /// Callers are responsible for routing: every mutation in `ops` must
    /// belong to `shard` under the column's partition (for an update, both
    /// `old` and `new`; cross-shard updates must be decomposed into a
    /// delete and a dependent insert by the caller — the executor does).
    pub fn apply_shard_ops(&self, shard: usize, ops: &[Mutation]) -> Vec<bool> {
        if ops.is_empty() {
            return Vec::new();
        }
        let mut guard = self.shards[shard].lock().expect("shard lock poisoned");
        let mut applied = Vec::with_capacity(ops.len());
        let mut digest_delta: Vec<&Mutation> = Vec::new();
        for op in ops {
            let ok = guard.apply(op);
            if ok {
                digest_delta.push(op);
            }
            applied.push(ok);
        }
        if !digest_delta.is_empty() {
            {
                let mut digest = self.digests[shard].write().expect("digest lock poisoned");
                for op in digest_delta {
                    digest.apply(op);
                }
            }
            self.shard_dirty[shard].store(true, Ordering::SeqCst);
            self.mutation_epoch.fetch_add(1, Ordering::SeqCst);
            // The per-shard counter is bumped while the shard lock is still
            // held: any digest tree stamped before this write completes is
            // invalidated before a reader can observe the new values.
            self.shard_mutations[shard].fetch_add(1, Ordering::SeqCst);
            // Pending deltas lower the shard's effective ρ until merged.
            self.note_rho(shard, &guard);
        }
        drop(guard);
        applied
    }

    /// Applies a batch of mutations in request order, serially. Returns
    /// the per-mutation applied flags. Cross-shard updates are atomic:
    /// the delete is attempted first and the insert of the new value only
    /// happens when it succeeded.
    ///
    /// This is the serial writer path, mirroring [`ShardedColumn::query`];
    /// the executor offers the shard-parallel, pool-dispatched analogue.
    pub fn apply_mutations(&self, mutations: &[Mutation]) -> Vec<bool> {
        mutations
            .iter()
            .map(|m| match *m {
                Mutation::Insert(v) | Mutation::Delete(v) => {
                    self.apply_shard_ops(self.shard_of(v), std::slice::from_ref(m))[0]
                }
                Mutation::Update { old, new } => {
                    let (from, to) = (self.shard_of(old), self.shard_of(new));
                    if from == to {
                        self.apply_shard_ops(from, std::slice::from_ref(m))[0]
                    } else if self.apply_shard_ops(from, &[Mutation::Delete(old)])[0] {
                        self.apply_shard_ops(to, &[Mutation::Insert(new)])[0]
                    } else {
                        false
                    }
                }
            })
            .collect()
    }

    /// Consumes shard `shard`'s dirty flag: `true` when a mutation was
    /// applied since the last call. Converged-shard caches call this
    /// before trusting a cached "converged" verdict.
    pub fn take_shard_dirty(&self, shard: usize) -> bool {
        self.shard_dirty[shard].swap(false, Ordering::SeqCst)
    }

    /// Reads shard `shard`'s dirty flag without consuming it (used by
    /// terminal-state latches to refuse latching over an unexamined
    /// mutation).
    pub fn shard_is_dirty(&self, shard: usize) -> bool {
        self.shard_dirty[shard].load(Ordering::SeqCst)
    }

    /// Monotone counter bumped on every applied mutation run. Convergence
    /// latches snapshot it so any later mutation invalidates them.
    pub fn mutation_epoch(&self) -> u64 {
        self.mutation_epoch.load(Ordering::SeqCst)
    }

    /// Monotone per-shard applied-mutation counter. Bumped under the shard
    /// lock before any writer releases it, so a stamp read under that same
    /// lock (see [`ShardedColumn::digest_tree`]) is valid exactly until
    /// the next write to the shard completes. The engine's aggregate cache
    /// compares against this before serving a cached digest tree.
    pub fn shard_mutation_count(&self, shard: usize) -> u64 {
        self.shard_mutations[shard].load(Ordering::SeqCst)
    }

    /// Shard `shard`'s cached ρ (the paper's fraction-indexed convergence
    /// measure), read lock-free from the value recorded the last time the
    /// shard performed indexing work or absorbed a mutation.
    pub fn shard_rho_estimate(&self, shard: usize) -> f64 {
        f64::from_bits(self.rho_cache[shard].load(Ordering::Relaxed))
    }

    /// The column's ρ, row-weighted over the per-shard caches (no locks;
    /// weights are the construction-time shard rows). This is the
    /// refinement-state input to the conjunction planner: approximate by
    /// design — it trades freshness for a zero-cost read on the planning
    /// path — and exactness never depends on it.
    pub fn rho_estimate(&self) -> f64 {
        let mut weighted = 0.0;
        let mut weight = 0.0;
        for (s, &rows) in self.shard_rows.iter().enumerate() {
            let w = rows.max(1) as f64;
            weighted += self.shard_rho_estimate(s) * w;
            weight += w;
        }
        if weight == 0.0 {
            1.0
        } else {
            weighted / weight
        }
    }

    /// Estimated fraction of the column's live rows matching
    /// `[low, high]`, computed from the per-shard digests alone (brief
    /// digest read locks; no shard mutexes, no index probes): a fully
    /// covered shard contributes its exact live count, a partially
    /// overlapped shard contributes a linear interpolation of its count
    /// over `[min, max]`. This is the selectivity input to the conjunction
    /// planner — approximate by design; exactness never depends on it.
    pub fn estimate_selectivity(&self, low: Value, high: Value) -> f64 {
        if low > high {
            return 0.0;
        }
        let visit = self.overlapping(low, high);
        let mut matching = 0.0;
        let mut total = 0.0;
        for (shard, digest) in self.digests.iter().enumerate() {
            let digest = digest.read().expect("digest lock poisoned");
            let count = digest.total.count as f64;
            total += count;
            if digest.total.count == 0 || !visit.contains(&shard) {
                continue;
            }
            if low <= digest.min && digest.max <= high {
                matching += count;
            } else {
                let lo = low.max(digest.min);
                let hi = high.min(digest.max);
                if lo <= hi {
                    let span = (digest.max - digest.min) as f64 + 1.0;
                    let overlap = (hi - lo) as f64 + 1.0;
                    matching += count * (overlap / span);
                }
            }
        }
        if total == 0.0 {
            0.0
        } else {
            (matching / total).clamp(0.0, 1.0)
        }
    }

    /// Locks shard `shard` and answers `[low, high]` **without** indexing
    /// work: the base-snapshot scan composed with the delta sidecars (see
    /// [`Shard::peek`]). The conjunction planner's validation probe for
    /// non-driving columns.
    pub fn peek_shard(&self, shard: usize, low: Value, high: Value) -> ScanResult {
        let guard = self.shards[shard].lock().expect("shard lock poisoned");
        guard.peek(low, high)
    }

    /// Answers `[low, high]` exactly without performing any indexing work,
    /// taking the O(1) covered-shard shortcut where the digests allow and
    /// peeking the boundary shards otherwise. Unlike
    /// [`ShardedColumn::query`], skipping the indexing side effect is safe
    /// here by definition — `peek` never does indexing work.
    pub fn peek(&self, low: Value, high: Value) -> ScanResult {
        let mut merged = ScanResult::EMPTY;
        for shard in self.overlapping(low, high) {
            merged = merged.merge(match self.covered_total(shard, low, high) {
                Some(total) => total,
                None => self.peek_shard(shard, low, high),
            });
        }
        merged
    }

    /// Builds shard `shard`'s sub-shard digest tree over the global grid
    /// of bucket width `width`, returning it with the shard-mutation stamp
    /// it is valid for. Stamp and live values are captured under one shard
    /// lock acquisition, and writers bump the counter *before* releasing
    /// the lock, so: cached stamp == [`ShardedColumn::shard_mutation_count`]
    /// ⇒ the tree still describes the shard's live multiset exactly.
    pub fn digest_tree(&self, shard: usize, width: Value) -> (u64, DigestTree) {
        let guard = self.shards[shard].lock().expect("shard lock poisoned");
        let stamp = self.shard_mutations[shard].load(Ordering::SeqCst);
        let tree = DigestTree::build(&guard.live_values(), width);
        (stamp, tree)
    }

    /// Re-draws equi-depth shard boundaries from the current live values
    /// and re-splits the column into the same number of shards, resetting
    /// every shard's index to the creation phase over its new slice.
    ///
    /// This is a stop-the-world operation (`&mut self`): it is meant for
    /// maintenance windows, before an executor is attached — the
    /// executor's shard addressing is computed at construction. The
    /// queries it serves stay exact throughout (answers never depend on
    /// indexing progress); only indexing progress is sacrificed.
    pub fn rebalance(&mut self) {
        let mut live: Vec<Value> = Vec::new();
        for shard in &self.shards {
            live.extend(shard.lock().expect("shard lock poisoned").live_values());
        }
        let shards = self.partition.shard_count();
        let partition = RangePartition::equi_depth(&live, shards);
        let index_metrics = self.index_metrics.take();
        let rho = self.rho.take();
        let merge_hook = self.merge_hook.take();
        // A rebalance re-slices every shard: per-shard mutation counters
        // must keep climbing past their old values so digest trees stamped
        // before the rebalance read as stale, never as current.
        let old_mutation_counts: Vec<u64> = self
            .shard_mutations
            .iter()
            .map(|c| c.load(Ordering::SeqCst))
            .collect();
        *self = Self::build(
            std::mem::take(&mut self.name),
            Column::from_vec(live),
            partition,
            self.algorithm,
            self.policy,
            self.distribution,
            self.tuning,
        );
        // The rebuilt shards keep reporting into the same metric family
        // (same shard count, so the gauge handles stay valid) and keep
        // firing the same merge hook.
        self.index_metrics = index_metrics;
        self.rho = rho;
        self.merge_hook = merge_hook;
        for (counter, old) in self.shard_mutations.iter().zip(old_mutation_counts) {
            counter.store(old + 1, Ordering::SeqCst);
        }
        self.reattach_metrics();
    }

    /// Per-shard status snapshots.
    pub fn shard_statuses(&self) -> Vec<IndexStatus> {
        self.shards
            .iter()
            .map(|s| s.lock().expect("shard lock poisoned").status())
            .collect()
    }

    /// Aggregate status of the column: the earliest phase any shard is
    /// still in, row-weighted mean progress, and convergence once every
    /// shard has converged.
    pub fn status(&self) -> IndexStatus {
        let mut phase = Phase::Converged;
        let mut fraction_indexed = 0.0;
        let mut phase_progress = 0.0;
        let mut converged = true;
        let mut weight = 0.0;
        for shard in &self.shards {
            let shard = shard.lock().expect("shard lock poisoned");
            let status = shard.status();
            let rows = shard.rows() as f64;
            phase = phase.min(status.phase);
            converged &= status.converged;
            fraction_indexed += status.fraction_indexed * rows;
            phase_progress += status.phase_progress * rows;
            weight += rows;
        }
        if weight == 0.0 {
            // Zero live rows is not the same as converged: a column whose
            // every row was just deleted still holds unmerged tombstone
            // sidecars (each shard reports `converged: false` until its
            // deltas are folded in).
            return if converged {
                IndexStatus::converged()
            } else {
                IndexStatus {
                    phase,
                    fraction_indexed: 0.0,
                    phase_progress: 0.0,
                    converged: false,
                }
            };
        }
        IndexStatus {
            phase,
            fraction_indexed: fraction_indexed / weight,
            phase_progress: phase_progress / weight,
            converged,
        }
    }

    /// `true` once every shard of the column has converged.
    pub fn is_converged(&self) -> bool {
        self.shards
            .iter()
            .all(|s| s.lock().expect("shard lock poisoned").status().converged)
    }
}

/// A multi-column table of range-sharded progressive indexes.
///
/// Columns are built through [`Table::builder`]; queries are served either
/// directly ([`Table::query`]) or — batched, in parallel, from many client
/// threads — through [`crate::executor::Executor`].
pub struct Table {
    columns: Vec<ShardedColumn>,
    by_name: HashMap<String, usize>,
}

/// Builder for [`Table`].
#[derive(Default)]
pub struct TableBuilder {
    specs: Vec<ColumnSpec>,
    metrics: Option<Arc<MetricsRegistry>>,
    durability: Option<crate::durability::DurabilityConfig>,
    tuning: Option<TuningParameters>,
    pool: Option<Arc<Pool>>,
}

impl TableBuilder {
    /// Adds a column.
    pub fn column(mut self, spec: ColumnSpec) -> Self {
        self.specs.push(spec);
        self
    }

    /// Overrides the kernel tuning constants of **every** column added to
    /// this builder (per-column [`ColumnSpec::with_tuning`] values are
    /// replaced). The default is each spec's own tuning — normally the
    /// machine-calibrated set. Pass [`TuningParameters::scalar`] to pin
    /// the reference scalar kernels table-wide, e.g. for A/B benchmarks.
    pub fn tuning(mut self, tuning: TuningParameters) -> Self {
        self.tuning = Some(tuning);
        self
    }

    /// Lends a worker pool to the build so large columns (at or above the
    /// tuning's parallel-count threshold) are classified with the exact
    /// pooled histogram estimator instead of a 4096-row sample; see
    /// [`crate::stats::estimate_distribution_pooled`]. Build-time only —
    /// the table holds no reference to the pool afterwards.
    pub fn pool(mut self, pool: Arc<Pool>) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Registers every column's index metrics in `registry`: per-column
    /// `core.<column>.*` counters (refinement steps, bytes moved, merge
    /// steps, cost-model error) shared across the column's shards, and
    /// per-shard `engine.rho.<column>.<shard>` convergence gauges.
    /// Without this call the table records nothing and pays nothing.
    pub fn metrics(mut self, registry: Arc<MetricsRegistry>) -> Self {
        self.metrics = Some(registry);
        self
    }

    /// Sets the durability configuration [`TableBuilder::build_durable`]
    /// wraps the table with (defaults apply when omitted).
    pub fn durability(mut self, config: crate::durability::DurabilityConfig) -> Self {
        self.durability = Some(config);
        self
    }

    /// Builds the table, sharding every column and constructing the
    /// per-shard indexes.
    ///
    /// # Panics
    /// Panics on duplicate column names.
    pub fn build(self) -> Table {
        let mut columns = Vec::with_capacity(self.specs.len());
        let mut by_name = HashMap::new();
        for mut spec in self.specs {
            if let Some(tuning) = self.tuning {
                spec.tuning = tuning;
            }
            let mut column = ShardedColumn::from_spec_with_pool(spec, self.pool.as_deref());
            if let Some(registry) = &self.metrics {
                column.attach_metrics(registry);
            }
            let previous = by_name.insert(column.name().to_string(), columns.len());
            assert!(
                previous.is_none(),
                "duplicate column name {:?}",
                column.name()
            );
            columns.push(column);
        }
        Table { columns, by_name }
    }

    /// Builds the table and wraps it in a
    /// [`crate::durability::DurableTable`] over the given write-ahead
    /// log and snapshot store, using the configuration set through
    /// [`TableBuilder::durability`] (or its defaults). The metrics
    /// registry set through [`TableBuilder::metrics`] also receives the
    /// `wal.*` namespace.
    ///
    /// # Panics
    /// Panics on duplicate column names.
    pub fn build_durable(
        self,
        wal: Box<dyn pi_durable::WalStorage>,
        store: Box<dyn pi_durable::SnapshotStore>,
    ) -> Result<crate::durability::DurableTable, crate::durability::DurabilityError> {
        let config = self.durability.unwrap_or_default();
        let registry = self.metrics.clone();
        let table = self.build();
        crate::durability::DurableTable::create(table, wal, store, config, registry.as_deref())
    }
}

impl Table {
    /// Starts building a table.
    pub fn builder() -> TableBuilder {
        TableBuilder::default()
    }

    /// Assembles a table from already-constructed columns (the recovery
    /// path; [`Table::builder`] is the normal constructor).
    ///
    /// # Panics
    /// Panics on duplicate column names.
    pub(crate) fn from_columns(columns: Vec<ShardedColumn>) -> Table {
        let mut by_name = HashMap::new();
        for (i, column) in columns.iter().enumerate() {
            let previous = by_name.insert(column.name().to_string(), i);
            assert!(
                previous.is_none(),
                "duplicate column name {:?}",
                column.name()
            );
        }
        Table { columns, by_name }
    }

    /// Attaches `hook` as the merge-boundary callback of every shard of
    /// every column (the durability layer's checkpoint trigger).
    pub(crate) fn attach_merge_hooks(&mut self, hook: MergeHook) {
        for column in &mut self.columns {
            column.attach_merge_hook(hook.clone());
        }
    }

    /// Re-balances the named column unconditionally (the durability
    /// layer's replay path for a logged rebalance; operational callers
    /// use [`Table::rebalance_if_drifted`]). Returns `false` for an
    /// unknown column.
    pub(crate) fn rebalance_column(&mut self, name: &str) -> bool {
        match self.by_name.get(name).copied() {
            Some(i) => {
                self.columns[i].rebalance();
                true
            }
            None => false,
        }
    }

    /// The table's columns, in insertion order.
    pub fn columns(&self) -> &[ShardedColumn] {
        &self.columns
    }

    /// Looks up a column by name.
    pub fn column(&self, name: &str) -> Option<&ShardedColumn> {
        self.by_name.get(name).map(|&i| &self.columns[i])
    }

    /// Index of a column by name (used by the executor's task lists).
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.by_name.get(name).copied()
    }

    /// `SELECT SUM(col), COUNT(col) WHERE col BETWEEN low AND high`,
    /// served serially. Returns `None` for an unknown column.
    pub fn query(&self, column: &str, low: Value, high: Value) -> Option<ScanResult> {
        Some(self.column(column)?.query(low, high))
    }

    /// Applies a batch of mutations to `column` in request order, serially
    /// (the writer analogue of [`Table::query`]; the executor offers the
    /// shard-parallel path). Returns the per-mutation applied flags, or
    /// `None` for an unknown column.
    ///
    /// ```
    /// use pi_core::mutation::Mutation;
    /// use pi_engine::{ColumnSpec, Table};
    ///
    /// let table = Table::builder()
    ///     .column(ColumnSpec::new("a", vec![1, 2, 3]))
    ///     .build();
    /// let applied = table
    ///     .apply_mutations("a", &[Mutation::Insert(10), Mutation::Delete(99)])
    ///     .unwrap();
    /// assert_eq!(applied, vec![true, false]); // no live 99 to delete
    /// assert_eq!(table.query("a", 0, 100).unwrap().count, 4);
    /// ```
    pub fn apply_mutations(&self, column: &str, mutations: &[Mutation]) -> Option<Vec<bool>> {
        Some(self.column(column)?.apply_mutations(mutations))
    }

    /// Re-balances every column whose live-row weight drift exceeds
    /// `threshold` (see [`ShardedColumn::weight_drift`]; `2.0` is a
    /// reasonable operational setting). Returns how many columns were
    /// re-balanced. Stop-the-world: requires exclusive access, so it runs
    /// in maintenance windows, not under an attached executor.
    pub fn rebalance_if_drifted(&mut self, threshold: f64) -> usize {
        let mut rebalanced = 0;
        for column in &mut self.columns {
            if column.weight_drift() > threshold {
                column.rebalance();
                rebalanced += 1;
            }
        }
        rebalanced
    }

    /// Aggregate status per column.
    pub fn status(&self) -> Vec<(&str, IndexStatus)> {
        self.columns
            .iter()
            .map(|c| (c.name(), c.status()))
            .collect()
    }

    /// `true` once every shard of every column has converged.
    pub fn is_converged(&self) -> bool {
        self.columns.iter().all(ShardedColumn::is_converged)
    }

    /// Total number of shards across all columns.
    pub fn total_shards(&self) -> usize {
        self.columns.iter().map(ShardedColumn::shard_count).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_core::testing::random_column;
    use pi_storage::scan::scan_range_sum;

    fn uniform_values(n: usize, seed: u64) -> Vec<Value> {
        random_column(n, n as u64, seed).into_vec()
    }

    #[test]
    fn sharded_column_matches_full_scan() {
        let values = uniform_values(20_000, 11);
        let column = ShardedColumn::from_spec(ColumnSpec::new("a", values.clone()).with_shards(4));
        assert_eq!(column.shard_count(), 4);
        for (low, high) in [(0, 5_000), (7_500, 12_500), (19_999, 19_999), (5, 3)] {
            assert_eq!(
                column.query(low, high),
                scan_range_sum(&values, low, high),
                "[{low}, {high}]"
            );
        }
    }

    #[test]
    fn scalar_and_tuned_tables_answer_identically() {
        let values = uniform_values(20_000, 41);
        let tuned = Table::builder()
            .column(ColumnSpec::new("a", values.clone()).with_shards(4))
            .build();
        let scalar = Table::builder()
            .column(ColumnSpec::new("a", values.clone()).with_shards(4))
            .tuning(TuningParameters::scalar())
            .build();
        for (low, high) in [(0, 5_000), (7_500, 12_500), (19_999, 19_999), (5, 3)] {
            let t = tuned.query("a", low, high).unwrap();
            let s = scalar.query("a", low, high).unwrap();
            assert_eq!(t, s, "[{low}, {high}]");
            assert_eq!(t, scan_range_sum(&values, low, high), "[{low}, {high}]");
        }
    }

    #[test]
    fn pooled_build_matches_sequential_build() {
        let values = uniform_values(30_000, 42);
        let pool = Arc::new(Pool::new(3));
        let pooled = Table::builder()
            .column(
                ColumnSpec::new("a", values.clone())
                    .with_shards(4)
                    .with_tuning(TuningParameters {
                        // Force the exact pooled estimator for this column.
                        parallel_count_threshold: 0,
                        ..TuningParameters::default()
                    }),
            )
            .pool(pool)
            .build();
        let plain = Table::builder()
            .column(ColumnSpec::new("a", values.clone()).with_shards(4))
            .build();
        for (low, high) in [(0, 10_000), (25_000, 29_999), (7, 7)] {
            assert_eq!(
                pooled.query("a", low, high).unwrap(),
                plain.query("a", low, high).unwrap(),
                "[{low}, {high}]"
            );
        }
    }

    #[test]
    fn shards_converge_under_maintenance() {
        let values = uniform_values(5_000, 13);
        let column = ShardedColumn::from_spec(
            ColumnSpec::new("a", values.clone())
                .with_shards(4)
                .with_policy(BudgetPolicy::FixedDelta(1.0)),
        );
        let mut guard = 0;
        while !column.is_converged() {
            for shard in 0..column.shard_count() {
                column.advance_shard(shard);
            }
            guard += 1;
            assert!(guard < 500, "column did not converge");
        }
        let status = column.status();
        assert!(status.converged);
        assert_eq!(status.phase, Phase::Converged);
        // Answers remain exact after convergence.
        assert_eq!(
            column.query(100, 2_000),
            scan_range_sum(&values, 100, 2_000)
        );
    }

    #[test]
    fn shard_rows_match_shard_contents() {
        let values = uniform_values(12_000, 23);
        let column = ShardedColumn::from_spec(ColumnSpec::new("a", values).with_shards(5));
        let rows = column.shard_rows().to_vec();
        assert_eq!(rows.len(), 5);
        assert_eq!(rows.iter().sum::<usize>(), 12_000);
        let locked: Vec<usize> = (0..5)
            .map(|s| column.shards[s].lock().unwrap().rows())
            .collect();
        assert_eq!(rows, locked);
    }

    #[test]
    fn auto_choice_uses_decision_tree() {
        // Uniform data, range hint → Radixsort MSD per Figure 11.
        let uniform = ShardedColumn::from_spec(
            ColumnSpec::new("u", uniform_values(10_000, 17))
                .with_choice(AlgorithmChoice::Auto(QueryShape::Range)),
        );
        assert_eq!(uniform.algorithm(), Algorithm::RadixsortMsd);
        // Point hint → Radixsort LSD.
        let point = ShardedColumn::from_spec(
            ColumnSpec::new("p", uniform_values(10_000, 18))
                .with_choice(AlgorithmChoice::Auto(QueryShape::Point)),
        );
        assert_eq!(point.algorithm(), Algorithm::RadixsortLsd);
    }

    #[test]
    fn table_routes_queries_by_column_name() {
        let a = uniform_values(8_000, 19);
        let b: Vec<Value> = a.iter().map(|v| v * 3).collect();
        let table = Table::builder()
            .column(ColumnSpec::new("a", a.clone()).with_shards(4))
            .column(ColumnSpec::new("b", b.clone()).with_shards(2))
            .build();
        assert_eq!(table.columns().len(), 2);
        assert_eq!(table.total_shards(), 6);
        assert_eq!(
            table.query("a", 100, 4_000),
            Some(scan_range_sum(&a, 100, 4_000))
        );
        assert_eq!(
            table.query("b", 300, 12_000),
            Some(scan_range_sum(&b, 300, 12_000))
        );
        assert_eq!(table.query("missing", 0, 1), None);
    }

    #[test]
    fn empty_and_tiny_columns_work() {
        let table = Table::builder()
            .column(ColumnSpec::new("empty", vec![]).with_shards(4))
            .column(ColumnSpec::new("tiny", vec![5, 1]).with_shards(4))
            .build();
        assert_eq!(table.query("empty", 0, 100), Some(ScanResult::EMPTY));
        assert_eq!(
            table.query("tiny", 0, 100),
            Some(ScanResult { sum: 6, count: 2 })
        );
        let empty = table.column("empty").unwrap();
        assert!(empty.status().converged);
    }

    #[test]
    fn empty_column_digest_sentinels_never_fake_coverage() {
        // An empty sub-column's digest starts from the min/max fold
        // neutral elements (min == Value::MAX, max == Value::MIN): the
        // inverted pair can never satisfy `low <= min && max <= high`
        // by accident because `covered_total` guards on the live count
        // first. This is the regression test for the empty-column
        // digest path (capability-gated typed digests sit on top of
        // exactly these totals).
        let column = ShardedColumn::from_spec(ColumnSpec::new("e", vec![]).with_shards(3));
        assert_eq!(column.live_rows(), 0);
        for (low, high) in [(0, u64::MAX), (0, 0), (u64::MAX, u64::MAX), (5, 3)] {
            for shard in 0..column.shard_count() {
                assert_eq!(
                    column.covered_total(shard, low, high),
                    Some(ScanResult::EMPTY),
                    "shard {shard} [{low}, {high}]"
                );
            }
            assert_eq!(column.query(low, high), ScanResult::EMPTY);
        }
        assert!(column.status().converged);

        // Inserts widen the neutral elements into real bounds and the
        // covered-shard shortcut stays exact.
        let applied = column.apply_mutations(&[Mutation::Insert(7), Mutation::Insert(9)]);
        assert_eq!(applied, vec![true, true]);
        let shard = column.shard_of(7);
        assert_eq!(
            column.covered_total(shard, 0, u64::MAX),
            Some(ScanResult { sum: 16, count: 2 })
        );
        assert_eq!(column.query(0, u64::MAX), ScanResult { sum: 16, count: 2 });

        // Deleting every row returns the digest to the empty state: the
        // count guard answers EMPTY even though [min, max] stays
        // stale-wide.
        let applied = column.apply_mutations(&[Mutation::Delete(7), Mutation::Delete(9)]);
        assert_eq!(applied, vec![true, true]);
        assert_eq!(
            column.covered_total(shard, 0, u64::MAX),
            Some(ScanResult::EMPTY)
        );
        assert_eq!(column.query(0, u64::MAX), ScanResult::EMPTY);
    }

    #[test]
    #[should_panic(expected = "duplicate column name")]
    fn duplicate_names_rejected() {
        let _ = Table::builder()
            .column(ColumnSpec::new("a", vec![1]))
            .column(ColumnSpec::new("a", vec![2]))
            .build();
    }

    #[test]
    fn mutations_update_answers_digests_and_live_counts() {
        let values = uniform_values(10_000, 29);
        let mut oracle = values.clone();
        let column = ShardedColumn::from_spec(ColumnSpec::new("a", values.clone()).with_shards(4));
        let mutations = [
            Mutation::Insert(123),
            Mutation::Delete(values[17]),
            Mutation::Delete(u64::MAX), // absent: rejected
            Mutation::Update {
                old: values[40],
                new: 9_999_999, // outside every shard's range: cross-shard move
            },
        ];
        let applied = column.apply_mutations(&mutations);
        assert_eq!(applied, vec![true, true, false, true]);
        oracle.push(123);
        let at = oracle.iter().position(|&v| v == values[17]).unwrap();
        oracle.remove(at);
        let at = oracle.iter().position(|&v| v == values[40]).unwrap();
        oracle.remove(at);
        oracle.push(9_999_999);
        assert_eq!(column.live_rows(), oracle.len());
        for (low, high) in [
            (0, u64::MAX),
            (9_999_999, 9_999_999),
            (123, 123),
            (0, 5_000),
        ] {
            assert_eq!(
                column.query(low, high),
                scan_range_sum(&oracle, low, high),
                "[{low}, {high}]"
            );
        }
    }

    #[test]
    fn serial_mutations_match_scan_oracle() {
        let values = uniform_values(5_000, 31);
        let mut oracle = values.clone();
        let column = ShardedColumn::from_spec(
            ColumnSpec::new("a", values)
                .with_shards(4)
                .with_policy(BudgetPolicy::FixedDelta(0.5)),
        );
        let mut seed = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for round in 0..100 {
            let v = next() % 5_000;
            let m = match next() % 3 {
                0 => Mutation::Insert(v),
                1 => Mutation::Delete(v),
                _ => Mutation::Update {
                    old: v,
                    new: next() % 5_000,
                },
            };
            let applied = column.apply_mutations(std::slice::from_ref(&m))[0];
            let expected = match m {
                Mutation::Insert(v) => {
                    oracle.push(v);
                    true
                }
                Mutation::Delete(v) => match oracle.iter().position(|&x| x == v) {
                    Some(at) => {
                        oracle.remove(at);
                        true
                    }
                    None => false,
                },
                Mutation::Update { old, new } => match oracle.iter().position(|&x| x == old) {
                    Some(at) => {
                        oracle.remove(at);
                        oracle.push(new);
                        true
                    }
                    None => false,
                },
            };
            assert_eq!(applied, expected, "round {round}: {m:?}");
            // Interleave queries and maintenance with the writes.
            let low = next() % 5_000;
            let high = low + next() % 500;
            assert_eq!(
                column.query(low, high),
                scan_range_sum(&oracle, low, high),
                "round {round} [{low}, {high}]"
            );
            column.advance_shard((round % 4) as usize);
        }
        assert_eq!(column.live_rows(), oracle.len());
    }

    #[test]
    fn mutated_converged_column_re_enters_maintenance_and_reconverges() {
        let values = uniform_values(4_000, 37);
        let column = ShardedColumn::from_spec(
            ColumnSpec::new("a", values.clone())
                .with_shards(4)
                .with_policy(BudgetPolicy::FixedDelta(1.0)),
        );
        let converge = |column: &ShardedColumn| {
            let mut guard = 0;
            while !column.is_converged() {
                for shard in 0..column.shard_count() {
                    column.advance_shard_by(shard, 8);
                }
                guard += 1;
                assert!(guard < 10_000, "column did not converge");
            }
        };
        converge(&column);
        assert!(!column.take_shard_dirty(0));
        let applied = column.apply_mutations(&[Mutation::Insert(42), Mutation::Insert(4_500)]);
        assert_eq!(applied, vec![true, true]);
        assert!(
            !column.is_converged(),
            "pending deltas must un-converge the column"
        );
        assert!(column.mutation_epoch() > 0);
        converge(&column);
        assert_eq!(
            column.query(0, u64::MAX).count as usize,
            values.len() + 2,
            "all rows live after re-convergence"
        );
    }

    #[test]
    fn deleting_every_row_does_not_fake_convergence() {
        let column = ShardedColumn::from_spec(
            ColumnSpec::new("a", vec![10, 20, 30])
                .with_shards(2)
                .with_policy(BudgetPolicy::FixedDelta(1.0)),
        );
        let applied = column.apply_mutations(&[
            Mutation::Delete(10),
            Mutation::Delete(20),
            Mutation::Delete(30),
        ]);
        assert_eq!(applied, vec![true, true, true]);
        assert_eq!(column.live_rows(), 0);
        // Tombstone sidecars are still pending: the column must keep
        // reporting unconverged so maintenance folds them in.
        assert!(!column.status().converged);
        assert!(!column.is_converged());
        let mut guard = 0;
        while !column.is_converged() {
            for shard in 0..column.shard_count() {
                column.advance_shard_by(shard, 8);
            }
            guard += 1;
            assert!(guard < 1_000, "tombstone merge did not converge");
        }
        assert!(column.status().converged);
        assert_eq!(column.query(0, u64::MAX), ScanResult::EMPTY);
    }

    #[test]
    fn rebalance_restores_equi_depth_after_skewed_inserts() {
        let values = uniform_values(8_000, 41);
        let table = Table::builder()
            .column(ColumnSpec::new("a", values.clone()).with_shards(4))
            .build();
        let mut table = table;
        // Pile inserts into a narrow band owned by one shard.
        let band: Vec<Mutation> = (0..8_000).map(|i| Mutation::Insert(100 + i % 50)).collect();
        table.apply_mutations("a", &band).unwrap();
        let column = table.column("a").unwrap();
        let before = column.weight_drift();
        assert!(
            before > 1.5,
            "skewed inserts must drift the weights, got {before}"
        );
        let expected = column.query(0, u64::MAX);
        assert_eq!(table.rebalance_if_drifted(1.5), 1);
        let column = table.column("a").unwrap();
        let after = column.weight_drift();
        assert!(
            after < before,
            "rebalance must reduce drift: {after} vs {before}"
        );
        assert!(after < 1.5, "rebalanced drift still high: {after}");
        // Same live multiset, served exactly, and re-convergeable.
        assert_eq!(column.query(0, u64::MAX), expected);
        assert_eq!(table.rebalance_if_drifted(1.5), 0, "second pass is a no-op");
    }
}
