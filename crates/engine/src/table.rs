//! Multi-column tables whose columns are range-sharded progressive
//! indexes.
//!
//! A [`Table`] owns a set of named columns. Each column is split into N
//! value-range shards (via [`pi_storage::shard::RangePartition`]); every
//! shard owns its **own** progressive index over its slice of the rows, so
//!
//! * indexing work on different shards can proceed in parallel,
//! * a range query only visits the shards whose value range overlaps the
//!   predicate, and
//! * each shard converges independently towards its B+-tree, preserving
//!   the paper's deterministic-convergence property per shard.
//!
//! The indexing algorithm is chosen **per column** through the paper's
//! Figure-11 decision tree ([`pi_core::decision::recommend`]) from the
//! estimated data distribution and an optional query-shape hint, or pinned
//! explicitly.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use pi_core::budget::BudgetPolicy;
use pi_core::decision::{recommend, Algorithm, DataDistribution, QueryShape, Scenario};
use pi_core::result::{IndexStatus, Phase};
use pi_core::RangeIndex;
use pi_storage::scan::ScanResult;
use pi_storage::shard::RangePartition;
use pi_storage::{Column, Value};

use crate::stats::{estimate_distribution, WorkloadStats};

/// How a column's indexing algorithm is selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlgorithmChoice {
    /// Walk the Figure-11 decision tree with the given query-shape hint
    /// and the distribution estimated from the data
    /// ([`estimate_distribution`]).
    Auto(QueryShape),
    /// Use this algorithm on every shard of the column.
    Fixed(Algorithm),
}

impl Default for AlgorithmChoice {
    fn default() -> Self {
        AlgorithmChoice::Auto(QueryShape::Unknown)
    }
}

/// Specification of one column of a [`Table`].
#[derive(Debug, Clone)]
pub struct ColumnSpec {
    /// Column name used to address queries.
    pub name: String,
    /// The column's values, in row order.
    pub values: Vec<Value>,
    /// Number of range shards.
    pub shards: usize,
    /// Per-shard indexing budget policy.
    pub policy: BudgetPolicy,
    /// Algorithm selection.
    pub choice: AlgorithmChoice,
}

impl ColumnSpec {
    /// A column with decision-tree algorithm selection and no query-shape
    /// hint.
    pub fn new(name: impl Into<String>, values: Vec<Value>) -> Self {
        ColumnSpec {
            name: name.into(),
            values,
            shards: 4,
            policy: BudgetPolicy::FixedDelta(0.25),
            choice: AlgorithmChoice::default(),
        }
    }

    /// Sets the shard count (builder style).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Sets the per-shard budget policy (builder style).
    pub fn with_policy(mut self, policy: BudgetPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the algorithm selection (builder style).
    pub fn with_choice(mut self, choice: AlgorithmChoice) -> Self {
        self.choice = choice;
        self
    }
}

/// One shard: a progressive index over the rows whose values fall into the
/// shard's value range. Empty shards carry no index and are born
/// converged.
pub struct Shard {
    rows: usize,
    index: Option<Box<dyn RangeIndex + Send>>,
}

impl Shard {
    fn new(column: Column, algorithm: Algorithm, policy: BudgetPolicy) -> Self {
        let rows = column.len();
        let index = if rows == 0 {
            None
        } else {
            Some(algorithm.build(Arc::new(column), policy))
        };
        Shard { rows, index }
    }

    /// Number of rows this shard owns.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Answers `[low, high]` against this shard, performing the shard's
    /// per-query indexing work as a side effect.
    pub fn query(&mut self, low: Value, high: Value) -> ScanResult {
        match &mut self.index {
            Some(index) => index.query(low, high).scan_result(),
            None => ScanResult::EMPTY,
        }
    }

    /// Performs one budgeted slice of indexing work without answering a
    /// query (an empty-range query: the paper's model performs indexing
    /// only as a query side effect, so maintenance is an empty query).
    /// Returns `true` when work was performed, `false` when the shard is
    /// already converged.
    pub fn advance(&mut self) -> bool {
        match &mut self.index {
            Some(index) if !index.is_converged() => {
                index.query(1, 0);
                true
            }
            _ => false,
        }
    }

    /// The shard's index status (empty shards report converged).
    pub fn status(&self) -> IndexStatus {
        match &self.index {
            Some(index) => index.status(),
            None => IndexStatus::converged(),
        }
    }
}

/// Immutable per-shard summary, captured when the column is split: the
/// shard's actual value bounds and its full-shard aggregate. Query answers
/// are always exact over the base rows regardless of indexing progress, so
/// a predicate that covers `[min, max]` entirely can be answered from
/// `total` in O(1) — no shard lock, no index probe (aggregate pushdown;
/// wide queries only pay real probes on their two boundary shards).
#[derive(Debug, Clone, Copy)]
struct ShardDigest {
    /// Smallest / largest value the shard holds (meaningless when empty).
    min: Value,
    max: Value,
    /// `SUM`/`COUNT` over every row of the shard.
    total: ScanResult,
    empty: bool,
}

/// A named, range-sharded, progressively indexed column.
pub struct ShardedColumn {
    name: String,
    rows: usize,
    domain: (Value, Value),
    algorithm: Algorithm,
    distribution: DataDistribution,
    partition: RangePartition,
    /// Rows per shard, immutable after construction — the task-granularity
    /// weights the scheduler pins shards to workers by (no shard lock
    /// needed to read them).
    shard_rows: Vec<usize>,
    digests: Vec<ShardDigest>,
    shards: Vec<Mutex<Shard>>,
    stats: WorkloadStats,
}

impl ShardedColumn {
    fn from_spec(spec: ColumnSpec) -> Self {
        assert!(spec.shards > 0, "a column needs at least one shard");
        let distribution = estimate_distribution(&spec.values);
        let algorithm = match spec.choice {
            AlgorithmChoice::Fixed(a) => a,
            AlgorithmChoice::Auto(shape) => recommend(Scenario {
                query_shape: shape,
                distribution,
                extra_memory_allowed: true,
            }),
        };
        let column = Column::from_vec(spec.values);
        let rows = column.len();
        let domain = column.domain().unwrap_or((0, 0));
        let partition = RangePartition::equi_depth(column.data(), spec.shards);
        let sub_columns = partition.split_column(&column);
        let shard_rows: Vec<usize> = sub_columns.iter().map(Column::len).collect();
        let digests = sub_columns
            .iter()
            .map(|sub| ShardDigest {
                min: sub.min(),
                max: sub.max(),
                total: ScanResult {
                    sum: sub.data().iter().map(|&v| v as u128).sum(),
                    count: sub.len() as u64,
                },
                empty: sub.is_empty(),
            })
            .collect();
        let shards = sub_columns
            .into_iter()
            .map(|sub| Mutex::new(Shard::new(sub, algorithm, spec.policy)))
            .collect();
        ShardedColumn {
            name: spec.name,
            rows,
            domain,
            algorithm,
            distribution,
            partition,
            shard_rows,
            digests,
            shards,
            stats: WorkloadStats::new(),
        }
    }

    /// Column name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The `[min, max]` value domain of the column (`(0, 0)` when empty).
    pub fn domain(&self) -> (Value, Value) {
        self.domain
    }

    /// The algorithm running on every shard of this column.
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard boundaries partition.
    pub fn partition(&self) -> &RangePartition {
        &self.partition
    }

    /// Rows owned by each shard (immutable after construction). The
    /// scheduler weights shard tasks by these counts when pinning shards
    /// to pool workers.
    pub fn shard_rows(&self) -> &[usize] {
        &self.shard_rows
    }

    /// The column's observed workload statistics.
    pub fn stats(&self) -> &WorkloadStats {
        &self.stats
    }

    /// Re-walks the Figure-11 decision tree with the *observed* workload
    /// shape (from [`ShardedColumn::stats`]) and the distribution estimated
    /// at build time.
    ///
    /// Algorithm selection happens once, at construction, when no queries
    /// have been observed; this reports what the tree would choose now, so
    /// an operator (or a future re-indexing PR) can detect drift between
    /// the running algorithm ([`ShardedColumn::algorithm`]) and the
    /// workload actually being served.
    pub fn recommended_algorithm(&self) -> Algorithm {
        recommend(self.stats.scenario(self.distribution, true))
    }

    /// The contiguous shard range a `[low, high]` predicate must visit.
    pub fn overlapping(&self, low: Value, high: Value) -> std::ops::Range<usize> {
        self.partition.overlapping(low, high)
    }

    /// Locks shard `shard` and answers `[low, high]` against it.
    ///
    /// Used by the executor's parallel fan-out; prefer
    /// [`ShardedColumn::query`] for the serial path.
    pub fn query_shard(&self, shard: usize, low: Value, high: Value) -> ScanResult {
        self.shards[shard]
            .lock()
            .expect("shard lock poisoned")
            .query(low, high)
    }

    /// O(1) answer for shard `shard` when the predicate covers every value
    /// the shard holds (or the shard is empty): the precomputed full-shard
    /// aggregate, taken without locking. `None` means the shard must be
    /// probed through [`ShardedColumn::query_shard`]. Exactness does not
    /// depend on indexing progress — answers are always over the base
    /// rows — but the skipped shard performs no per-query indexing work,
    /// so callers must converge it some other way (the executor's
    /// maintenance floor and idle cycles do; the serial
    /// [`ShardedColumn::query`] therefore does not use this shortcut).
    pub fn covered_total(&self, shard: usize, low: Value, high: Value) -> Option<ScanResult> {
        let digest = &self.digests[shard];
        if digest.empty {
            Some(ScanResult::EMPTY)
        } else if low <= digest.min && digest.max <= high {
            Some(digest.total)
        } else {
            None
        }
    }

    /// Answers `[low, high]` by visiting the overlapping shards serially
    /// and merging the partial results. Records the query in the column's
    /// workload statistics.
    ///
    /// This serial path deliberately does *not* take the
    /// [`ShardedColumn::covered_total`] shortcut: with no maintenance
    /// machinery at this layer, skipping the per-query indexing side
    /// effect would leave fully covered shards unconverged forever under
    /// query-only traffic. The executor, whose maintenance floor
    /// guarantees convergence independently of queries, is the shortcut's
    /// intended user.
    pub fn query(&self, low: Value, high: Value) -> ScanResult {
        self.stats.record(low, high);
        let mut merged = ScanResult::EMPTY;
        for shard in self.overlapping(low, high) {
            merged = merged.merge(self.query_shard(shard, low, high));
        }
        merged
    }

    /// Performs one maintenance step on shard `shard`; returns `true` when
    /// indexing work was performed.
    pub fn advance_shard(&self, shard: usize) -> bool {
        self.advance_shard_by(shard, 1) > 0
    }

    /// Performs up to `steps` maintenance steps on shard `shard` under a
    /// single lock acquisition; returns the steps actually performed
    /// (stops early at convergence). Batching matters to background
    /// maintenance: with N shards each budgeted step is ~N× smaller, and
    /// taking the shard lock per step would multiply the lock round-trips
    /// — and the contention with serving threads — by N.
    pub fn advance_shard_by(&self, shard: usize, steps: usize) -> usize {
        let mut guard = self.shards[shard].lock().expect("shard lock poisoned");
        let mut performed = 0;
        while performed < steps && guard.advance() {
            performed += 1;
        }
        performed
    }

    /// Per-shard status snapshots.
    pub fn shard_statuses(&self) -> Vec<IndexStatus> {
        self.shards
            .iter()
            .map(|s| s.lock().expect("shard lock poisoned").status())
            .collect()
    }

    /// Aggregate status of the column: the earliest phase any shard is
    /// still in, row-weighted mean progress, and convergence once every
    /// shard has converged.
    pub fn status(&self) -> IndexStatus {
        let mut phase = Phase::Converged;
        let mut fraction_indexed = 0.0;
        let mut phase_progress = 0.0;
        let mut converged = true;
        let mut weight = 0.0;
        for shard in &self.shards {
            let shard = shard.lock().expect("shard lock poisoned");
            let status = shard.status();
            let rows = shard.rows() as f64;
            phase = phase.min(status.phase);
            converged &= status.converged;
            fraction_indexed += status.fraction_indexed * rows;
            phase_progress += status.phase_progress * rows;
            weight += rows;
        }
        if weight == 0.0 {
            return IndexStatus::converged();
        }
        IndexStatus {
            phase,
            fraction_indexed: fraction_indexed / weight,
            phase_progress: phase_progress / weight,
            converged,
        }
    }

    /// `true` once every shard of the column has converged.
    pub fn is_converged(&self) -> bool {
        self.shards
            .iter()
            .all(|s| s.lock().expect("shard lock poisoned").status().converged)
    }
}

/// A multi-column table of range-sharded progressive indexes.
///
/// Columns are built through [`Table::builder`]; queries are served either
/// directly ([`Table::query`]) or — batched, in parallel, from many client
/// threads — through [`crate::executor::Executor`].
pub struct Table {
    columns: Vec<ShardedColumn>,
    by_name: HashMap<String, usize>,
}

/// Builder for [`Table`].
#[derive(Default)]
pub struct TableBuilder {
    specs: Vec<ColumnSpec>,
}

impl TableBuilder {
    /// Adds a column.
    pub fn column(mut self, spec: ColumnSpec) -> Self {
        self.specs.push(spec);
        self
    }

    /// Builds the table, sharding every column and constructing the
    /// per-shard indexes.
    ///
    /// # Panics
    /// Panics on duplicate column names.
    pub fn build(self) -> Table {
        let mut columns = Vec::with_capacity(self.specs.len());
        let mut by_name = HashMap::new();
        for spec in self.specs {
            let column = ShardedColumn::from_spec(spec);
            let previous = by_name.insert(column.name().to_string(), columns.len());
            assert!(
                previous.is_none(),
                "duplicate column name {:?}",
                column.name()
            );
            columns.push(column);
        }
        Table { columns, by_name }
    }
}

impl Table {
    /// Starts building a table.
    pub fn builder() -> TableBuilder {
        TableBuilder::default()
    }

    /// The table's columns, in insertion order.
    pub fn columns(&self) -> &[ShardedColumn] {
        &self.columns
    }

    /// Looks up a column by name.
    pub fn column(&self, name: &str) -> Option<&ShardedColumn> {
        self.by_name.get(name).map(|&i| &self.columns[i])
    }

    /// Index of a column by name (used by the executor's task lists).
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.by_name.get(name).copied()
    }

    /// `SELECT SUM(col), COUNT(col) WHERE col BETWEEN low AND high`,
    /// served serially. Returns `None` for an unknown column.
    pub fn query(&self, column: &str, low: Value, high: Value) -> Option<ScanResult> {
        Some(self.column(column)?.query(low, high))
    }

    /// Aggregate status per column.
    pub fn status(&self) -> Vec<(&str, IndexStatus)> {
        self.columns
            .iter()
            .map(|c| (c.name(), c.status()))
            .collect()
    }

    /// `true` once every shard of every column has converged.
    pub fn is_converged(&self) -> bool {
        self.columns.iter().all(ShardedColumn::is_converged)
    }

    /// Total number of shards across all columns.
    pub fn total_shards(&self) -> usize {
        self.columns.iter().map(ShardedColumn::shard_count).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_core::testing::random_column;
    use pi_storage::scan::scan_range_sum;

    fn uniform_values(n: usize, seed: u64) -> Vec<Value> {
        random_column(n, n as u64, seed).into_vec()
    }

    #[test]
    fn sharded_column_matches_full_scan() {
        let values = uniform_values(20_000, 11);
        let column = ShardedColumn::from_spec(ColumnSpec::new("a", values.clone()).with_shards(4));
        assert_eq!(column.shard_count(), 4);
        for (low, high) in [(0, 5_000), (7_500, 12_500), (19_999, 19_999), (5, 3)] {
            assert_eq!(
                column.query(low, high),
                scan_range_sum(&values, low, high),
                "[{low}, {high}]"
            );
        }
    }

    #[test]
    fn shards_converge_under_maintenance() {
        let values = uniform_values(5_000, 13);
        let column = ShardedColumn::from_spec(
            ColumnSpec::new("a", values.clone())
                .with_shards(4)
                .with_policy(BudgetPolicy::FixedDelta(1.0)),
        );
        let mut guard = 0;
        while !column.is_converged() {
            for shard in 0..column.shard_count() {
                column.advance_shard(shard);
            }
            guard += 1;
            assert!(guard < 500, "column did not converge");
        }
        let status = column.status();
        assert!(status.converged);
        assert_eq!(status.phase, Phase::Converged);
        // Answers remain exact after convergence.
        assert_eq!(
            column.query(100, 2_000),
            scan_range_sum(&values, 100, 2_000)
        );
    }

    #[test]
    fn shard_rows_match_shard_contents() {
        let values = uniform_values(12_000, 23);
        let column = ShardedColumn::from_spec(ColumnSpec::new("a", values).with_shards(5));
        let rows = column.shard_rows().to_vec();
        assert_eq!(rows.len(), 5);
        assert_eq!(rows.iter().sum::<usize>(), 12_000);
        let locked: Vec<usize> = (0..5)
            .map(|s| column.shards[s].lock().unwrap().rows())
            .collect();
        assert_eq!(rows, locked);
    }

    #[test]
    fn auto_choice_uses_decision_tree() {
        // Uniform data, range hint → Radixsort MSD per Figure 11.
        let uniform = ShardedColumn::from_spec(
            ColumnSpec::new("u", uniform_values(10_000, 17))
                .with_choice(AlgorithmChoice::Auto(QueryShape::Range)),
        );
        assert_eq!(uniform.algorithm(), Algorithm::RadixsortMsd);
        // Point hint → Radixsort LSD.
        let point = ShardedColumn::from_spec(
            ColumnSpec::new("p", uniform_values(10_000, 18))
                .with_choice(AlgorithmChoice::Auto(QueryShape::Point)),
        );
        assert_eq!(point.algorithm(), Algorithm::RadixsortLsd);
    }

    #[test]
    fn table_routes_queries_by_column_name() {
        let a = uniform_values(8_000, 19);
        let b: Vec<Value> = a.iter().map(|v| v * 3).collect();
        let table = Table::builder()
            .column(ColumnSpec::new("a", a.clone()).with_shards(4))
            .column(ColumnSpec::new("b", b.clone()).with_shards(2))
            .build();
        assert_eq!(table.columns().len(), 2);
        assert_eq!(table.total_shards(), 6);
        assert_eq!(
            table.query("a", 100, 4_000),
            Some(scan_range_sum(&a, 100, 4_000))
        );
        assert_eq!(
            table.query("b", 300, 12_000),
            Some(scan_range_sum(&b, 300, 12_000))
        );
        assert_eq!(table.query("missing", 0, 1), None);
    }

    #[test]
    fn empty_and_tiny_columns_work() {
        let table = Table::builder()
            .column(ColumnSpec::new("empty", vec![]).with_shards(4))
            .column(ColumnSpec::new("tiny", vec![5, 1]).with_shards(4))
            .build();
        assert_eq!(table.query("empty", 0, 100), Some(ScanResult::EMPTY));
        assert_eq!(
            table.query("tiny", 0, 100),
            Some(ScanResult { sum: 6, count: 2 })
        );
        let empty = table.column("empty").unwrap();
        assert!(empty.status().converged);
    }

    #[test]
    #[should_panic(expected = "duplicate column name")]
    fn duplicate_names_rejected() {
        let _ = Table::builder()
            .column(ColumnSpec::new("a", vec![1]))
            .column(ColumnSpec::new("a", vec![2]))
            .build();
    }
}
