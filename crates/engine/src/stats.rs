//! Workload and data statistics feeding the Figure-11 decision tree.
//!
//! The paper's decision tree (reproduced by [`pi_core::decision::recommend`])
//! expects a [`Scenario`]: the dominant query shape, what is known about
//! the value distribution, and whether out-of-place bucket memory is
//! acceptable. In a serving engine none of those are configuration inputs —
//! they are *observable*. This module observes them:
//!
//! * [`WorkloadStats`] tracks per-column query shape and selectivity as
//!   queries arrive (lock-free, so the hot path stays cheap). The engine
//!   consults them through
//!   [`crate::table::ShardedColumn::recommended_algorithm`], which re-walks
//!   the decision tree against the observed workload; switching a running
//!   column to the new recommendation is a future re-indexing PR.
//! * [`estimate_distribution`] classifies a column's value distribution
//!   from a sample, mirroring the paper's uniform-vs-skewed dichotomy; it
//!   feeds the build-time algorithm choice. [`estimate_distribution_pooled`]
//!   is the large-column variant: above the machine's calibrated
//!   parallel-count threshold it replaces the 4096-row sample with an
//!   *exact* 256-bin histogram counted per-chunk on the `pi-sched` pool.

use std::sync::atomic::{AtomicU64, Ordering};

use pi_core::decision::{DataDistribution, QueryShape, Scenario};
use pi_core::tuning::TuningParameters;
use pi_sched::Pool;
use pi_storage::Value;

/// Running per-column workload statistics.
///
/// All counters are relaxed atomics: the executor records queries from many
/// client threads concurrently and exact cross-thread ordering is
/// irrelevant for the aggregate shape of a workload.
#[derive(Debug, Default)]
pub struct WorkloadStats {
    point_queries: AtomicU64,
    range_queries: AtomicU64,
    /// Total selected width (∑ `high - low + 1`), for mean selectivity.
    width_sum: AtomicU64,
}

impl WorkloadStats {
    /// An empty statistics accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one range predicate `[low, high]`.
    ///
    /// Empty predicates (`low > high`) are ignored: they select nothing,
    /// so counting them (as width-1 "range" queries) would drag the
    /// observed shape and selectivity toward a phantom ultra-selective
    /// range workload.
    pub fn record(&self, low: Value, high: Value) {
        if low > high {
            return;
        }
        if low == high {
            self.point_queries.fetch_add(1, Ordering::Relaxed);
        } else {
            self.range_queries.fetch_add(1, Ordering::Relaxed);
        }
        let width = high.saturating_sub(low).saturating_add(1);
        // Saturating accumulation: full-domain widths are ~2^64, so a
        // wrapping fetch_add would overflow after a handful of queries and
        // silently corrupt the mean.
        let _ = self
            .width_sum
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |sum| {
                Some(sum.saturating_add(width))
            });
    }

    /// Number of queries recorded so far.
    pub fn query_count(&self) -> u64 {
        self.point_queries.load(Ordering::Relaxed) + self.range_queries.load(Ordering::Relaxed)
    }

    /// Fraction of recorded queries that were point queries (0 when no
    /// queries have been recorded).
    pub fn point_fraction(&self) -> f64 {
        let total = self.query_count();
        if total == 0 {
            return 0.0;
        }
        self.point_queries.load(Ordering::Relaxed) as f64 / total as f64
    }

    /// Mean selected width relative to `domain` (mean selectivity), or
    /// `None` before any query was recorded.
    pub fn mean_selectivity(&self, domain: u64) -> Option<f64> {
        let total = self.query_count();
        if total == 0 || domain == 0 {
            return None;
        }
        let mean_width = self.width_sum.load(Ordering::Relaxed) as f64 / total as f64;
        Some(mean_width / domain as f64)
    }

    /// The dominant [`QueryShape`] of the recorded workload.
    ///
    /// The paper's "Point Query" workload block is *dominated* by point
    /// queries, so the threshold is a majority: more than half point
    /// queries → [`QueryShape::Point`]; any recorded queries otherwise →
    /// [`QueryShape::Range`]; nothing recorded → [`QueryShape::Unknown`].
    pub fn query_shape(&self) -> QueryShape {
        if self.query_count() == 0 {
            QueryShape::Unknown
        } else if self.point_fraction() > 0.5 {
            QueryShape::Point
        } else {
            QueryShape::Range
        }
    }

    /// Assembles the decision-tree scenario from the observed shape and
    /// the column's estimated distribution.
    pub fn scenario(&self, distribution: DataDistribution, extra_memory_allowed: bool) -> Scenario {
        Scenario {
            query_shape: self.query_shape(),
            distribution,
            extra_memory_allowed,
        }
    }
}

/// A column is classified skewed when the middle 90% of its sampled
/// values (5th–95th percentile) spans less than this fraction of the full
/// value domain. Uniform data spans ~0.9; the paper's skewed data (90% of
/// mass in 10% of the domain) spans ~0.1 — wherever in the domain the hot
/// region sits.
const SKEW_SPAN_THRESHOLD: f64 = 0.5;

/// Sample size for [`estimate_distribution`].
const DISTRIBUTION_SAMPLE: usize = 4096;

/// Classifies the value distribution of `values` by how tightly the bulk
/// of the data is concentrated: the 5th–95th-percentile span of a sample,
/// relative to the full `[min, max]` domain. Unlike a fixed "middle of
/// the domain" window, this recognises a hot region anywhere — centred,
/// edge-clustered, or Zipf-like.
///
/// Returns [`DataDistribution::Unknown`] for columns too small to judge
/// (fewer than 32 rows) or with a degenerate (single-value) domain.
pub fn estimate_distribution(values: &[Value]) -> DataDistribution {
    if values.len() < 32 {
        return DataDistribution::Unknown;
    }
    let mut sample = pi_storage::shard::sample_values(values, DISTRIBUTION_SAMPLE);
    sample.sort_unstable();
    let min = sample[0];
    let max = sample[sample.len() - 1];
    if min == max {
        return DataDistribution::Unknown;
    }
    let q05 = sample[sample.len() * 5 / 100];
    let q95 = sample[sample.len() * 95 / 100];
    let bulk_span = (q95 - q05) as f64;
    let full_span = (max - min) as f64;
    if bulk_span / full_span < SKEW_SPAN_THRESHOLD {
        DataDistribution::Skewed
    } else {
        DataDistribution::Uniform
    }
}

/// [`estimate_distribution`] for columns large enough that sampling can
/// misjudge them: at or above `tuning.parallel_count_threshold` rows the
/// classification runs on an **exact** 256-bin histogram of the full
/// column, counted per-chunk on the pool
/// ([`pi_sched::parallel::par_chunk_counts`]) — every row is seen, no
/// sampling variance. Below the threshold (where fan-out overhead would
/// dominate) it simply delegates to the sequential sampled estimator.
///
/// The skew rule is the same 5th–95th-percentile span test, evaluated at
/// bin resolution (1/256 of the domain — far finer than the 0.5 span
/// threshold it feeds).
pub fn estimate_distribution_pooled(
    values: &[Value],
    pool: &Pool,
    tuning: &TuningParameters,
) -> DataDistribution {
    if values.len() < tuning.parallel_count_threshold {
        return estimate_distribution(values);
    }
    let (min, max) = values
        .iter()
        .fold((Value::MAX, Value::MIN), |(lo, hi), &v| {
            (lo.min(v), hi.max(v))
        });
    if min == max {
        return DataDistribution::Unknown;
    }
    let span = (max - min) as u128 + 1;
    let bin_of = move |v: Value| (((v - min) as u128 * 256) / span) as u8;
    let counts = pi_sched::par_chunk_counts(pool, values, &bin_of);

    let total = values.len();
    let mut cumulative = 0usize;
    let mut q05_bin = 0usize;
    let mut q95_bin = 255usize;
    let mut q05_found = false;
    for (bin, &c) in counts.iter().enumerate() {
        cumulative += c;
        if !q05_found && cumulative * 100 >= total * 5 {
            q05_bin = bin;
            q05_found = true;
        }
        if cumulative * 100 >= total * 95 {
            q95_bin = bin;
            break;
        }
    }
    let bulk_span = (q95_bin - q05_bin) as f64 / 256.0;
    if bulk_span < SKEW_SPAN_THRESHOLD {
        DataDistribution::Skewed
    } else {
        DataDistribution::Uniform
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_predicates_are_not_recorded() {
        let stats = WorkloadStats::new();
        stats.record(10, 5);
        assert_eq!(stats.query_count(), 0);
        assert_eq!(stats.query_shape(), QueryShape::Unknown);
        assert_eq!(stats.mean_selectivity(100), None);
    }

    #[test]
    fn shape_starts_unknown_then_follows_majority() {
        let stats = WorkloadStats::new();
        assert_eq!(stats.query_shape(), QueryShape::Unknown);
        stats.record(5, 5);
        stats.record(7, 7);
        stats.record(0, 100);
        assert_eq!(stats.query_shape(), QueryShape::Point);
        stats.record(0, 50);
        stats.record(10, 90);
        assert_eq!(stats.query_shape(), QueryShape::Range);
        assert_eq!(stats.query_count(), 5);
    }

    #[test]
    fn selectivity_averages_recorded_widths() {
        let stats = WorkloadStats::new();
        assert_eq!(stats.mean_selectivity(1_000), None);
        stats.record(0, 99); // width 100
        stats.record(0, 299); // width 300
        let s = stats.mean_selectivity(1_000).unwrap();
        assert!((s - 0.2).abs() < 1e-9, "selectivity {s}");
    }

    #[test]
    fn huge_widths_saturate_instead_of_wrapping() {
        let stats = WorkloadStats::new();
        // Two half-domain-plus widths sum past 2^64: a wrapping add would
        // collapse the accumulator to ~2 (selectivity ~0), saturation pins
        // it at "very wide".
        for _ in 0..2 {
            stats.record(0, 1 << 63);
        }
        let s = stats.mean_selectivity(u64::MAX).unwrap();
        assert!(s > 0.4, "selectivity collapsed to {s}");
    }

    #[test]
    fn scenario_combines_shape_and_distribution() {
        let stats = WorkloadStats::new();
        stats.record(0, 1_000);
        let s = stats.scenario(DataDistribution::Skewed, true);
        assert_eq!(s.query_shape, QueryShape::Range);
        assert_eq!(s.distribution, DataDistribution::Skewed);
        assert!(s.extra_memory_allowed);
        // Range + skewed → bucketsort, per Figure 11.
        assert_eq!(
            pi_core::decision::recommend(s),
            pi_core::decision::Algorithm::Bucketsort
        );
    }

    #[test]
    fn uniform_data_is_classified_uniform() {
        let values: Vec<Value> = (0..50_000).collect();
        assert_eq!(estimate_distribution(&values), DataDistribution::Uniform);
    }

    #[test]
    fn skewed_data_is_classified_skewed() {
        // 90% of values within the middle tenth of [0, 100_000).
        let mut values: Vec<Value> = Vec::new();
        for i in 0..90_000u64 {
            values.push(47_500 + i % 5_000);
        }
        for i in 0..10_000u64 {
            values.push(i * 10);
        }
        assert_eq!(estimate_distribution(&values), DataDistribution::Skewed);
    }

    #[test]
    fn edge_skewed_data_is_classified_skewed() {
        // 90% of values near the domain *minimum* (Zipf-like keys): a
        // middle-of-the-domain window would miss this entirely.
        let mut values: Vec<Value> = Vec::new();
        for i in 0..90_000u64 {
            values.push(i % 5_000);
        }
        for i in 0..10_000u64 {
            values.push(i * 10);
        }
        assert_eq!(estimate_distribution(&values), DataDistribution::Skewed);
    }

    #[test]
    fn degenerate_columns_stay_unknown() {
        assert_eq!(estimate_distribution(&[1, 2, 3]), DataDistribution::Unknown);
        let constant = vec![7u64; 1_000];
        assert_eq!(estimate_distribution(&constant), DataDistribution::Unknown);
    }

    /// Tuning that forces every column through the pooled (exact) path.
    fn always_pooled() -> TuningParameters {
        TuningParameters {
            parallel_count_threshold: 0,
            ..TuningParameters::default()
        }
    }

    #[test]
    fn pooled_estimator_agrees_with_sequential_on_uniform_data() {
        let pool = Pool::new(3);
        let values: Vec<Value> = (0..50_000).collect();
        assert_eq!(
            estimate_distribution_pooled(&values, &pool, &always_pooled()),
            DataDistribution::Uniform
        );
        assert_eq!(
            estimate_distribution_pooled(&values, &pool, &always_pooled()),
            estimate_distribution(&values)
        );
    }

    #[test]
    fn pooled_estimator_agrees_with_sequential_on_skewed_data() {
        let pool = Pool::new(3);
        let mut values: Vec<Value> = Vec::new();
        for i in 0..90_000u64 {
            values.push(47_500 + i % 5_000);
        }
        for i in 0..10_000u64 {
            values.push(i * 10);
        }
        assert_eq!(
            estimate_distribution_pooled(&values, &pool, &always_pooled()),
            DataDistribution::Skewed
        );
        assert_eq!(
            estimate_distribution_pooled(&values, &pool, &always_pooled()),
            estimate_distribution(&values)
        );
    }

    #[test]
    fn pooled_estimator_handles_degenerate_and_small_columns() {
        let pool = Pool::new(2);
        let constant = vec![7u64; 1_000];
        assert_eq!(
            estimate_distribution_pooled(&constant, &pool, &always_pooled()),
            DataDistribution::Unknown
        );
        // Below the threshold the sampled estimator is used verbatim.
        let tiny: Vec<Value> = (0..100).collect();
        let tuning = TuningParameters::default(); // threshold ≥ 2^16 ≫ 100
        assert_eq!(
            estimate_distribution_pooled(&tiny, &pool, &tuning),
            estimate_distribution(&tiny)
        );
    }

    #[test]
    fn pooled_estimator_sees_skew_a_sample_cannot_hide() {
        // Full-column exactness: edge-clustered mass near the maximum,
        // with a thin (2%) tail spread across the rest of the domain so
        // the 5th–95th-percentile window sits entirely inside the hot
        // cluster.
        let pool = Pool::new(4);
        let mut values: Vec<Value> = Vec::new();
        for i in 0..98_000u64 {
            values.push(1_000_000 + i % 1_000);
        }
        for i in 0..2_000u64 {
            values.push(i * 500);
        }
        assert_eq!(
            estimate_distribution_pooled(&values, &pool, &always_pooled()),
            DataDistribution::Skewed
        );
    }
}
