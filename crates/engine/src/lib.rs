//! # pi-engine — sharded, concurrent query serving over progressive indexes
//!
//! The paper (Holanda et al., PVLDB 12(13), 2019) defines progressive
//! indexing for a single column queried by a single thread: every query
//! performs a bounded δ-slice of indexing work, answers never depend on
//! indexing progress, and the index converges deterministically. This
//! crate scales that model to a serving engine:
//!
//! * [`Table`] — multiple named columns, each **range-sharded** into N
//!   independent shards ([`pi_storage::shard::RangePartition`], equi-depth
//!   boundaries). Every shard owns its own progressive index; the
//!   algorithm is chosen per column **at build time** via the paper's
//!   Figure-11 decision tree fed by [`stats::estimate_distribution`] (or
//!   pinned with [`AlgorithmChoice::Fixed`]). The observed
//!   [`stats::WorkloadStats`] re-walk the same tree on demand through
//!   [`table::ShardedColumn::recommended_algorithm`], surfacing drift
//!   between the running algorithm and the served workload.
//! * [`Executor`] — accepts query batches from any number of client
//!   threads, fans each query out across the overlapping shards on a
//!   persistent, shard-affine [`pi_sched::Pool`] (shards pinned to
//!   workers by row weight, work-stealing for balance, the caller
//!   helping), merges the partial [`pi_storage::ScanResult`]s, and
//!   amortizes a fixed per-batch **maintenance budget** across cold
//!   shards. The pool's idle cycles are donated to the same maintenance,
//!   so the whole table converges under any workload pattern — even one
//!   that never queries a cold shard's range — the engine-level analogue
//!   of the paper's per-query robustness guarantee.
//! * **Mutations** — tables are not append-only: [`Table::apply_mutations`]
//!   (serial) and [`Executor::apply_mutations`] (shard-parallel, on the
//!   same pool) take batches of [`pi_core::mutation::Mutation`] inserts,
//!   deletes and updates. Every shard is a
//!   [`pi_core::mutation::MutableIndex`]: answers stay exact at any
//!   refinement stage via a pending-delta sidecar, per-shard digests are
//!   updated atomically with the shard (the O(1) covered-shard shortcut
//!   stays exact under writes), and a mutated converged shard re-enters
//!   maintenance until its deltas are merged back in — convergence is
//!   re-established after every write burst. When skewed writes drift the
//!   shard weights, [`Table::rebalance_if_drifted`] re-draws the
//!   equi-depth boundaries from the live values.
//! * **Typed key domains** — [`typed::TypedTable`] and
//!   [`typed::TypedExecutor`] open float, signed-integer and string
//!   columns over the same `u64` core through order-preserving encodings
//!   ([`pi_storage::encoding::OrderedKey`]): shard boundaries are drawn
//!   in encoded space, answers are exact under the key domain's total
//!   order at every refinement stage (string boundary ties resolved by
//!   an exact-match side path), and SUM digests are capability-gated to
//!   the domains that can decode them.
//! * **Multi-column queries** — [`multicol::MultiTable`] and
//!   [`multicol::MultiExecutor`] turn independently-refined columns into
//!   a small progressive database: conjunctions
//!   (`WHERE a BETWEEN .. AND b BETWEEN ..`) are planned by
//!   [`planner`] (drive the estimated-cheapest column through the
//!   shard-parallel path, validate survivors exactly against the other
//!   predicates' full typed keys), heterogeneous column sets mix
//!   u64/i64/f64/string domains through the column-erased handle
//!   ([`erased::ErasedColumn`]), and grouped aggregates
//!   (`SUM/COUNT/MIN/MAX GROUP BY bucket`) are answered from sub-shard
//!   [`pi_storage::DigestTree`]s behind a hot-range aggregate cache
//!   invalidated by per-shard mutation counters.
//! * **Durability** — [`durability::DurableTable`] write-ahead logs every
//!   mutation batch, checkpoints each column as its merged base snapshot
//!   plus pending sidecar ("log the delta, snapshot the merged base"),
//!   and recovers from a crash at any log offset to exactly the last
//!   durable prefix ([`durability::DurableTable::recover`]). Attach it to
//!   an executor with [`TableBuilder::durability`] +
//!   [`TableBuilder::build_durable`] and [`Executor::with_durability`].
//!
//! The executor implements [`pi_sched::BatchExecutor`], so a
//! [`pi_sched::Server`] can front it with a bounded admission queue,
//! cross-client batch coalescing, backpressure and graceful shutdown; the
//! [`TableServer`] alias names that combination.
//!
//! ## Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use pi_engine::{ColumnSpec, Executor, Table, TableQuery};
//!
//! // Two columns, four shards each; algorithms come from the decision tree.
//! let ra: Vec<u64> = (0..10_000).map(|i| (i * 37) % 10_000).collect();
//! let dec: Vec<u64> = (0..10_000).map(|i| (i * 101) % 20_000).collect();
//! let table = Arc::new(
//!     Table::builder()
//!         .column(ColumnSpec::new("ra", ra.clone()).with_shards(4))
//!         .column(ColumnSpec::new("dec", dec).with_shards(4))
//!         .build(),
//! );
//!
//! let executor = Executor::new(Arc::clone(&table));
//! let results = executor
//!     .execute_batch(&[
//!         TableQuery::new("ra", 1_000, 2_000),
//!         TableQuery::new("dec", 0, 5_000),
//!     ])
//!     .unwrap();
//!
//! // Answers are bit-identical to a full scan, from the very first batch.
//! let expected = pi_storage::scan::scan_range_sum(&ra, 1_000, 2_000);
//! assert_eq!(results[0], expected);
//!
//! // Batches keep refining the shards; maintenance converges the rest.
//! executor.drive_to_convergence(usize::MAX);
//! assert!(table.is_converged());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod durability;
pub mod erased;
pub mod executor;
pub mod multicol;
pub mod planner;
pub mod stats;
pub mod table;
pub mod typed;

pub use durability::{DurabilityConfig, DurabilityError, DurableTable, RecoveryReport};
pub use erased::{ErasedColumn, ErasedKey, ErasedSum, KeyDomain};
pub use executor::{EngineError, Executor, ExecutorConfig, TableQuery};
pub use multicol::{
    ConjunctionAnswer, GroupRow, GroupedQuery, MultiColumnSpec, MultiExecutor, MultiTable,
    PlanMode, Predicate, RowMutation,
};
pub use pi_core::tuning::{KernelMode, TuningParameters};
pub use planner::{choose_driving, Plan, PredicateStats, RHO_WEIGHT};
pub use stats::{estimate_distribution, estimate_distribution_pooled, WorkloadStats};
pub use table::{AlgorithmChoice, ColumnSpec, Shard, ShardedColumn, Table, TableBuilder};
pub use typed::{
    TableKey, TypedColumnSpec, TypedExecutor, TypedMutation, TypedQuery, TypedResult, TypedTable,
};

/// A [`pi_sched::Server`] front-end over the engine's [`Executor`]:
/// bounded admission queue, batch coalescing across clients, backpressure
/// and graceful shutdown, with idle dispatcher cycles donated to shard
/// maintenance.
pub type TableServer = pi_sched::Server<Executor>;
