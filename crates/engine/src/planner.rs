//! Conjunction planning: which column drives a multi-predicate scan.
//!
//! A conjunction `WHERE a BETWEEN .. AND b BETWEEN ..` is executed as
//! *drive one column, validate the rest*: the driving predicate goes
//! through the normal shard-parallel path (paying the paper's per-query
//! δ of refinement work on that column), every row surviving it is then
//! checked exactly against the remaining predicates. Both stage costs
//! scale with the driving predicate's match count, so the planner's job
//! is to drive the cheapest column.
//!
//! The decision combines the two signals the engine already maintains,
//! both readable without shard locks:
//!
//! * **Estimated selectivity** — the fraction of rows the predicate
//!   matches, interpolated from the per-shard digests
//!   ([`crate::ShardedColumn::estimate_selectivity`]). Fewer survivors
//!   means less validation work; this is the dominant term.
//! * **Refinement state ρ** — the paper's convergence measure, from the
//!   lock-free per-shard cache
//!   ([`crate::ShardedColumn::rho_estimate`]). Scanning a converged
//!   column costs a B+-tree probe; scanning a cold one costs a partial
//!   scan plus its budgeted indexing slice. A cold column still
//!   *benefits* from being driven (the δ work is how it converges), so ρ
//!   is a tiebreaker, not a veto — hence the small weight.
//!
//! Each predicate scores `selectivity + RHO_WEIGHT · (1 − ρ)`; the
//! minimum drives. Both inputs are estimates; the choice only moves
//! *cost*, never answers — validation re-checks every predicate exactly.

/// Weight of the refinement-state term in the planner score. Small by
/// design: a 25-point selectivity gap always beats any convergence gap,
/// while equal selectivities break towards the more-converged column.
pub const RHO_WEIGHT: f64 = 0.25;

/// The planner's per-predicate decision inputs, as gathered for one
/// conjunction.
#[derive(Debug, Clone, PartialEq)]
pub struct PredicateStats {
    /// The predicate's column.
    pub column: String,
    /// Estimated fraction of live rows matching the predicate, in
    /// `[0, 1]` (from the per-shard digests).
    pub selectivity: f64,
    /// The column's estimated ρ (fraction indexed), in `[0, 1]` (from
    /// the lock-free per-shard cache).
    pub rho: f64,
}

impl PredicateStats {
    /// The predicate's driving cost score — lower drives.
    pub fn score(&self) -> f64 {
        self.selectivity + RHO_WEIGHT * (1.0 - self.rho)
    }
}

/// One planned conjunction: the driving predicate and the scores behind
/// the choice (surfaced for tests and observability).
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// Index (into the conjunction's predicate list) of the driving
    /// predicate.
    pub driving: usize,
    /// The decision inputs, in predicate order.
    pub stats: Vec<PredicateStats>,
}

/// Picks the driving predicate: minimum score, first on ties (so the
/// choice is deterministic in predicate order).
///
/// # Panics
/// Panics on an empty conjunction — callers reject those first.
pub fn choose_driving(stats: Vec<PredicateStats>) -> Plan {
    assert!(
        !stats.is_empty(),
        "a conjunction needs at least one predicate"
    );
    let mut driving = 0;
    let mut best = stats[0].score();
    for (i, s) in stats.iter().enumerate().skip(1) {
        let score = s.score();
        if score < best {
            best = score;
            driving = i;
        }
    }
    Plan { driving, stats }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(column: &str, selectivity: f64, rho: f64) -> PredicateStats {
        PredicateStats {
            column: column.into(),
            selectivity,
            rho,
        }
    }

    #[test]
    fn equal_selectivity_breaks_towards_converged_column() {
        let plan = choose_driving(vec![stats("cold", 0.3, 0.0), stats("converged", 0.3, 1.0)]);
        assert_eq!(plan.driving, 1);
        assert_eq!(plan.stats[plan.driving].column, "converged");
    }

    #[test]
    fn selectivity_gap_beats_any_convergence_gap() {
        // 0.1% selective but completely cold vs 90% selective and fully
        // converged: the selective predicate must drive — RHO_WEIGHT
        // bounds the convergence term below any large selectivity gap.
        let plan = choose_driving(vec![
            stats("wide_converged", 0.9, 1.0),
            stats("narrow_cold", 0.001, 0.0),
        ]);
        assert_eq!(plan.driving, 1);
        assert!(plan.stats[1].score() < plan.stats[0].score());
    }

    #[test]
    fn ties_resolve_to_first_predicate() {
        let plan = choose_driving(vec![stats("a", 0.5, 0.5), stats("b", 0.5, 0.5)]);
        assert_eq!(plan.driving, 0);
    }

    #[test]
    #[should_panic(expected = "at least one predicate")]
    fn empty_conjunction_rejected() {
        let _ = choose_driving(Vec::new());
    }
}
