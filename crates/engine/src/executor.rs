//! Batched, shard-parallel query execution on a persistent scheduler,
//! with an amortized per-batch indexing budget.
//!
//! The paper bounds the *extra* work any single query performs by the
//! indexing budget δ. The executor extends that guarantee to concurrent
//! serving:
//!
//! * **Fan-out on a persistent pool** — each query of a batch is
//!   decomposed into one sub-query list per overlapping `(column, shard)`;
//!   the shard tasks are dispatched onto a persistent, shard-affine
//!   [`pi_sched::Pool`] (shards pinned to workers by row weight for cache
//!   locality, work-stealing for balance, the submitting client helps
//!   drain) and the partial [`ScanResult`]s are merged per query. A shard
//!   performs its budgeted δ-slice of indexing work for every sub-query it
//!   answers, on a shard that holds only ~`rows / shard_count` elements —
//!   so the extra work a query pays stays bounded even when it spans
//!   several shards. Nothing is spawned per batch: the pool outlives every
//!   batch, which is what makes shard-parallelism profitable at
//!   microsecond task granularity.
//! * **Maintenance budget** — after answering, a fire-and-forget pool job
//!   spends at most [`ExecutorConfig::maintenance_steps`] additional
//!   empty-query steps per batch, round-robin over the not-yet-converged
//!   shards the batch did *not* touch, off the client's critical path.
//! * **Idle-cycle maintenance** — when
//!   [`ExecutorConfig::background_maintenance`] is on (the default), pool
//!   workers donate their idle cycles to the same round-robin maintenance.
//!   Each idle cycle advances one shard by up to its column's shard count
//!   of budgeted steps under a single lock acquisition (roughly a whole
//!   column-δ of work), so finer sharding does not multiply the lock
//!   round-trips contending with serving threads. Cold shards therefore
//!   converge even under a workload that *never* queries their range,
//!   without ever exceeding the fixed per-batch budget on the serving
//!   path — the engine-level analogue of the paper's robustness guarantee.
//!
//! The executor is `Sync`: any number of client threads may call
//! [`Executor::execute_batch`] concurrently on one shared instance. Shard
//! state is guarded by per-shard mutexes, so two clients only contend when
//! their queries genuinely touch the same shard.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use pi_core::budget::StepBudget;
use pi_core::mutation::Mutation;
use pi_obs::{Counter, Histogram, MetricsRegistry, ScopeTimer};
use pi_sched::{plan_affinity, BatchExecutor, Job, Pool, PoolConfig, PoolStats};
use pi_storage::scan::ScanResult;
use pi_storage::Value;

use crate::table::Table;

/// A `SELECT SUM(column), COUNT(column) WHERE column BETWEEN low AND high`
/// request addressed to a [`Table`] column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableQuery {
    /// Name of the queried column.
    pub column: String,
    /// Lower predicate bound (inclusive).
    pub low: Value,
    /// Upper predicate bound (inclusive; `low > high` is the empty range).
    pub high: Value,
}

impl TableQuery {
    /// Creates a query.
    pub fn new(column: impl Into<String>, low: Value, high: Value) -> Self {
        TableQuery {
            column: column.into(),
            low,
            high,
        }
    }
}

/// Errors returned by the executor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A query addressed a column the table does not have.
    UnknownColumn(String),
    /// The durability layer failed to log or checkpoint a write (the
    /// wrapped [`crate::durability::DurabilityError`], stringified so
    /// the error stays `Clone`).
    Durability(String),
    /// A conjunction carried no predicates (the multi-column layer
    /// refuses to guess between "all rows" and "no rows").
    EmptyConjunction,
    /// A predicate's key domain does not match its column's domain
    /// (e.g. float bounds against a string column).
    DomainMismatch(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::UnknownColumn(name) => write!(f, "unknown column {name:?}"),
            EngineError::Durability(what) => write!(f, "durability failure: {what}"),
            EngineError::EmptyConjunction => write!(f, "conjunction has no predicates"),
            EngineError::DomainMismatch(column) => {
                write!(f, "predicate key domain does not match column {column:?}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl From<crate::durability::DurabilityError> for EngineError {
    fn from(e: crate::durability::DurabilityError) -> Self {
        match e {
            crate::durability::DurabilityError::UnknownColumn(name) => {
                EngineError::UnknownColumn(name)
            }
            other => EngineError::Durability(other.to_string()),
        }
    }
}

/// Executor tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecutorConfig {
    /// Number of persistent pool workers the executor keeps alive.
    /// Defaults to the machine's available parallelism.
    pub worker_threads: usize,
    /// Maintenance budget: maximum number of additional budgeted indexing
    /// steps (empty queries) spent per batch on shards the batch did not
    /// touch.
    pub maintenance_steps: usize,
    /// Donate the pool's idle cycles to cold-shard maintenance, so every
    /// shard converges even when its value range is never queried.
    pub background_maintenance: bool,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        ExecutorConfig {
            worker_threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            maintenance_steps: 4,
            background_maintenance: true,
        }
    }
}

impl ExecutorConfig {
    /// `worker_threads = workers`, other knobs at their defaults.
    pub fn with_workers(workers: usize) -> Self {
        ExecutorConfig {
            worker_threads: workers,
            ..ExecutorConfig::default()
        }
    }
}

/// The executor's metric handles, registered under `executor.*` (see
/// [`Executor::with_metrics`]). Counters are always live; the
/// `phase.*_ns` histograms decompose where batch wall time goes and only
/// fill when [`pi_obs::ENABLED`] is true.
struct ExecutorObs {
    /// Batches executed through [`Executor::execute_batch`].
    batches: Arc<Counter>,
    /// Individual queries inside those batches.
    queries: Arc<Counter>,
    /// Shard visits answered from the digest in O(1) (the covered-shard
    /// shortcut) instead of a locked index probe.
    digest_hits: Arc<Counter>,
    /// Converged-cache invalidations: shards reopened for maintenance
    /// because a mutation landed after they were observed converged.
    shards_reopened: Arc<Counter>,
    /// Batch framing: name resolution and per-shard sub-query routing.
    decompose_ns: Arc<Histogram>,
    /// Shard fan-out: pool dispatch plus every shard probe.
    scan_ns: Arc<Histogram>,
    /// Folding the partial results back into per-query answers.
    merge_ns: Arc<Histogram>,
    /// Background maintenance rounds (off the serving path).
    maintain_ns: Arc<Histogram>,
}

impl ExecutorObs {
    fn register(registry: &MetricsRegistry) -> Arc<ExecutorObs> {
        Arc::new(ExecutorObs {
            batches: registry.counter("executor.batches"),
            queries: registry.counter("executor.queries"),
            digest_hits: registry.counter("executor.digest_hits"),
            shards_reopened: registry.counter("executor.shards_reopened"),
            decompose_ns: registry.histogram("executor.phase.decompose_ns"),
            scan_ns: registry.histogram("executor.phase.scan_ns"),
            merge_ns: registry.histogram("executor.phase.merge_ns"),
            maintain_ns: registry.histogram("executor.phase.maintain_ns"),
        })
    }
}

/// One (column, shard) work item of a batch: every sub-query of the batch
/// that must visit this shard.
struct ShardTask {
    column: usize,
    shard: usize,
    /// `(query index in the batch, low, high)`.
    sub_queries: Vec<(usize, Value, Value)>,
}

/// The shared maintenance state: which shards exist and where the
/// round-robin cursor stands. Shared between the executor, its per-batch
/// maintenance jobs and the pool's idle hook, all of which outlive any
/// single borrow of the executor.
struct MaintenanceState {
    table: Arc<Table>,
    /// Flat `(column, shard)` addresses of every shard; the table shape is
    /// immutable after construction, so this is computed once.
    addresses: Vec<(usize, usize)>,
    /// Round-robin cursor over `addresses`.
    cursor: AtomicUsize,
    /// Per-address converged cache. Convergence is monotone *between
    /// mutations* (a converged index only regresses when written), so once
    /// set a sweep skips the shard without touching its mutex — in the
    /// steady state maintenance stops contending with serving threads
    /// entirely. A mutation marks its shard dirty at the table layer
    /// ([`crate::table::ShardedColumn::take_shard_dirty`]); the cache
    /// consumes that flag and re-examines the shard, so a mutated
    /// converged shard re-enters maintenance no matter which path the
    /// write took.
    converged: Vec<AtomicBool>,
    /// Terminal-state latch, stamped with `table epoch + 1` when a full
    /// sweep found every shard converged; lets the executor stop spawning
    /// per-batch maintenance jobs (and waking pool workers) altogether.
    /// Any later mutation — or dirty-shard reopening in
    /// [`MaintenanceState::advance_at`] — bumps the epoch and thereby
    /// invalidates the stamp race-free (`0` = never latched).
    all_converged_at: AtomicU64,
    /// Shards reopened after a mutation (cache cleared because the dirty
    /// flag was set). Part of the table epoch: consuming a dirty flag
    /// must invalidate any latch stamped concurrently, otherwise a sweep
    /// that read the flag *between* the consume and the shard's actual
    /// re-examination could latch the terminal state over an unfinished
    /// delta merge.
    reopened: AtomicU64,
    /// Shared with the owning [`Executor`]; maintenance jobs time their
    /// rounds and count cache invalidations through it.
    obs: Option<Arc<ExecutorObs>>,
}

impl MaintenanceState {
    /// Sum of the per-column mutation epochs plus the reopen counter: a
    /// table-wide monotone invalidation-event counter.
    fn table_epoch(&self) -> u64 {
        self.table
            .columns()
            .iter()
            .map(|c| c.mutation_epoch())
            .sum::<u64>()
            + self.reopened.load(Ordering::SeqCst)
    }

    /// Tries up to `steps` budgeted steps on the shard at flat address
    /// `at` (one lock acquisition), going through the converged cache.
    /// Returns the steps performed; records newly observed convergence.
    fn advance_at(&self, at: usize, steps: usize) -> usize {
        let (c, s) = self.addresses[at];
        let column = &self.table.columns()[c];
        if self.converged[at].load(Ordering::SeqCst) {
            // Trust the cache only while the shard is clean; a mutation
            // since the last check means the shard may have pending deltas
            // to merge, so it re-enters maintenance. Ordering matters:
            // clear the cache, bump the epoch, *then* consume the dirty
            // flag — a concurrent `note_exhausted_sweep` either still sees
            // the dirty flag (no latch), or read its epoch before our bump
            // (stamp invalid), or reads our cleared cache entry (no
            // latch). No interleaving can latch over the reopening.
            if !column.shard_is_dirty(s) {
                return 0;
            }
            self.converged[at].store(false, Ordering::SeqCst);
            self.reopened.fetch_add(1, Ordering::SeqCst);
            if let Some(obs) = &self.obs {
                obs.shards_reopened.inc();
            }
            column.take_shard_dirty(s);
        }
        let performed = column.advance_shard_by(s, steps);
        if performed < steps {
            self.converged[at].store(true, Ordering::SeqCst);
        }
        performed
    }

    /// `true` while the terminal latch is valid: every shard was observed
    /// converged and no mutation has been applied since.
    fn is_all_converged(&self) -> bool {
        let latched = self.all_converged_at.load(Ordering::SeqCst);
        latched != 0 && latched == self.table_epoch() + 1
    }

    /// Called when a full sweep performed no work: if the converged cache
    /// now covers every shard — and no shard carries an unexamined
    /// mutation — latch the terminal state, stamped with the epoch
    /// observed *before* the checks (so a concurrent mutation invalidates
    /// the stamp rather than racing it).
    fn note_exhausted_sweep(&self) {
        let epoch = self.table_epoch();
        let all_clean = self.addresses.iter().enumerate().all(|(at, &(c, s))| {
            self.converged[at].load(Ordering::SeqCst) && !self.table.columns()[c].shard_is_dirty(s)
        });
        if all_clean {
            self.all_converged_at.store(epoch + 1, Ordering::SeqCst);
        }
    }

    /// Spends up to `steps` budgeted steps on unconverged shards outside
    /// `touched` (a flat-shard-id mask, or empty for "none"), round-robin.
    /// Returns the steps actually performed.
    fn run_round(&self, steps: usize, touched: &[bool]) -> usize {
        let total = self.addresses.len();
        if total == 0 || steps == 0 || self.is_all_converged() {
            return 0;
        }
        let mut performed = 0;
        let mut visited = 0;
        while performed < steps && visited < total {
            let at = self.cursor.fetch_add(1, Ordering::Relaxed) % total;
            visited += 1;
            if touched.get(at).copied().unwrap_or(false) {
                continue;
            }
            performed += self.advance_at(at, 1);
        }
        if performed == 0 && visited >= total {
            self.note_exhausted_sweep();
        }
        performed
    }

    /// One sweep of the cursor: advance the first unconverged shard
    /// found. With `batched`, the steps on that shard are batched so one
    /// sweep (one shard-lock acquisition) performs roughly a whole
    /// column-δ of work no matter how finely the column is sharded —
    /// per-step locking would multiply contention with serving threads
    /// by the shard count. Returns whether indexing work was performed.
    fn sweep(&self, batched: bool) -> bool {
        let total = self.addresses.len();
        if total == 0 || self.is_all_converged() {
            return false;
        }
        for _ in 0..total {
            let at = self.cursor.fetch_add(1, Ordering::Relaxed) % total;
            let steps = if batched {
                self.table.columns()[self.addresses[at].0].shard_count()
            } else {
                1
            };
            if self.advance_at(at, steps) > 0 {
                return true;
            }
        }
        self.note_exhausted_sweep();
        false
    }

    /// One idle cycle: a batched [`MaintenanceState::sweep`].
    fn idle_step(&self) -> bool {
        self.sweep(true)
    }

    /// Exactly one budgeted step, for callers that account work step by
    /// step ([`Executor::drive_to_convergence`]'s shared [`StepBudget`]).
    fn single_step(&self) -> bool {
        self.sweep(false)
    }
}

/// Shard-parallel batch executor over a shared [`Table`], running on a
/// persistent [`Pool`].
pub struct Executor {
    table: Arc<Table>,
    config: ExecutorConfig,
    maintenance: Arc<MaintenanceState>,
    /// Worker pinned to each flat shard id (see [`Executor::flat_id`]),
    /// balanced by shard row count.
    affinity: Vec<usize>,
    /// `flat_id(c, s) = column_offsets[c] + s`.
    column_offsets: Vec<usize>,
    /// Fire-and-forget maintenance jobs currently enqueued; bounded so a
    /// saturated pool never accumulates a maintenance backlog.
    pending_maintenance: Arc<AtomicUsize>,
    pool: Pool,
    /// The registry passed to [`Executor::with_metrics`], if any.
    registry: Option<Arc<MetricsRegistry>>,
    /// Durability layer, when attached ([`Executor::with_durability`]):
    /// mutations route through its write-ahead log and the idle path
    /// triggers its opportunistic checkpoints.
    durability: Option<Arc<crate::durability::DurableTable>>,
}

impl Executor {
    /// Creates an executor with default configuration.
    pub fn new(table: Arc<Table>) -> Self {
        Self::with_config(table, ExecutorConfig::default())
    }

    /// Creates an executor with an explicit configuration, spawning its
    /// persistent worker pool. Records no metrics; see
    /// [`Executor::with_metrics`].
    pub fn with_config(table: Arc<Table>, config: ExecutorConfig) -> Self {
        Self::build(table, config, None)
    }

    /// Creates an executor whose `executor.*` metrics — batch/query
    /// counters, digest-shortcut hits, converged-cache invalidations and
    /// the per-phase `executor.phase.*_ns` timing decomposition — land in
    /// `registry`, together with the worker pool's `sched.pool.*`
    /// metrics. Pair with [`crate::table::TableBuilder::metrics`] (index
    /// layer) and `pi_sched::Server::with_metrics` (serving layer) on the
    /// same registry for a full-stack snapshot.
    pub fn with_metrics(
        table: Arc<Table>,
        config: ExecutorConfig,
        registry: Arc<MetricsRegistry>,
    ) -> Self {
        Self::build(table, config, Some(registry))
    }

    /// Creates an executor over a durable table
    /// ([`crate::durability::DurableTable`]): queries and maintenance
    /// serve the wrapped table as usual, while
    /// [`Executor::apply_mutations`] routes every batch through the
    /// write-ahead log (serialized — log order must equal apply order —
    /// instead of the shard-parallel wave dispatch) and the pool's idle
    /// cycles additionally trigger the durability layer's opportunistic
    /// checkpoints. Pass the registry the durable table was created
    /// with, if any, to also get the `executor.*` metrics.
    pub fn with_durability(
        durable: Arc<crate::durability::DurableTable>,
        config: ExecutorConfig,
        registry: Option<Arc<MetricsRegistry>>,
    ) -> Self {
        Self::build_with(Arc::clone(durable.table()), config, registry, Some(durable))
    }

    fn build(
        table: Arc<Table>,
        config: ExecutorConfig,
        registry: Option<Arc<MetricsRegistry>>,
    ) -> Self {
        Self::build_with(table, config, registry, None)
    }

    fn build_with(
        table: Arc<Table>,
        config: ExecutorConfig,
        registry: Option<Arc<MetricsRegistry>>,
        durability: Option<Arc<crate::durability::DurableTable>>,
    ) -> Self {
        let mut addresses = Vec::with_capacity(table.total_shards());
        let mut column_offsets = Vec::with_capacity(table.columns().len());
        let mut weights = Vec::with_capacity(table.total_shards());
        for (c, column) in table.columns().iter().enumerate() {
            column_offsets.push(addresses.len());
            for s in 0..column.shard_count() {
                addresses.push((c, s));
                weights.push(column.shard_rows()[s]);
            }
        }
        let workers = config.worker_threads.max(1);
        let affinity = plan_affinity(&weights, workers);
        let converged = (0..addresses.len())
            .map(|_| AtomicBool::new(false))
            .collect();
        let obs = registry.as_deref().map(ExecutorObs::register);
        let maintenance = Arc::new(MaintenanceState {
            table: Arc::clone(&table),
            addresses,
            cursor: AtomicUsize::new(0),
            converged,
            all_converged_at: AtomicU64::new(0),
            reopened: AtomicU64::new(0),
            obs,
        });
        let idle_task = config.background_maintenance.then(|| {
            let maintenance = Arc::clone(&maintenance);
            let durable = durability.clone();
            Arc::new(move |_worker: usize| {
                let worked = maintenance.idle_step();
                // Idle cycles double as the durability layer's checkpoint
                // pulse (a failed opportunistic checkpoint is surfaced by
                // the next durable write, not here).
                if let Some(durable) = &durable {
                    let _ = durable.maybe_checkpoint();
                }
                worked
            }) as pi_sched::IdleTask
        });
        let pool = Pool::with_config(PoolConfig {
            workers,
            idle_task,
            metrics: registry.clone(),
            ..PoolConfig::default()
        });
        Executor {
            table,
            config,
            maintenance,
            affinity,
            column_offsets,
            pending_maintenance: Arc::new(AtomicUsize::new(0)),
            pool,
            registry,
            durability,
        }
    }

    /// The durability layer, when one is attached.
    pub fn durability(&self) -> Option<&Arc<crate::durability::DurableTable>> {
        self.durability.as_ref()
    }

    /// The table this executor serves.
    pub fn table(&self) -> &Arc<Table> {
        &self.table
    }

    /// The executor's configuration.
    pub fn config(&self) -> ExecutorConfig {
        self.config
    }

    /// Scheduler counters of the underlying pool (executed / stolen jobs
    /// per worker, caller-helped jobs, idle maintenance cycles).
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// The metrics registry this executor reports into (`None` unless
    /// built through [`Executor::with_metrics`]).
    pub fn metrics(&self) -> Option<&Arc<MetricsRegistry>> {
        self.registry.as_ref()
    }

    fn flat_id(&self, column: usize, shard: usize) -> usize {
        self.column_offsets[column] + shard
    }

    /// Executes a batch of range-sum queries.
    ///
    /// Results come back in request order and are bit-identical to a full
    /// scan of the base column (per-query answers never depend on how far
    /// indexing has progressed).
    ///
    /// Cold-shard maintenance happens off this call's critical path:
    /// after answering, up to [`ExecutorConfig::maintenance_steps`]
    /// budgeted indexing steps are spent on untouched, unconverged
    /// shards as a fire-and-forget pool job — the load-independent floor
    /// — and with [`ExecutorConfig::background_maintenance`] on (the
    /// default) the pool's idle cycles add batched maintenance on top
    /// whenever serving leaves them free.
    pub fn execute_batch(&self, queries: &[TableQuery]) -> Result<Vec<ScanResult>, EngineError> {
        let obs = self.maintenance.obs.as_deref();
        // Resolve names and record workload statistics up front, so an
        // unknown column fails the whole batch before any work happens.
        let decompose_timer = obs.map(|o| ScopeTimer::new(&o.decompose_ns));
        let mut resolved = Vec::with_capacity(queries.len());
        for q in queries {
            let column = self.table.column_index(&q.column).ok_or_else(|| {
                EngineError::UnknownColumn(q.column.clone())
                // (The scope timer records the failed framing too — an
                // error batch still spent the time.)
            })?;
            resolved.push((column, q.low, q.high));
        }
        for &(column, low, high) in &resolved {
            self.table.columns()[column].stats().record(low, high);
        }
        if let Some(obs) = obs {
            obs.batches.inc();
            obs.queries.add(queries.len() as u64);
        }

        // Decompose the batch into per-(column, shard) sub-query lists.
        // Tasks are looked up through a dense flat-shard-id scratch table
        // (the table shape is immutable), not a hash map: batch framing
        // runs once per shard visit, and hashing dominated it at higher
        // shard counts.
        let total_shards = self.maintenance.addresses.len();
        let mut results = vec![ScanResult::EMPTY; queries.len()];
        let mut tasks: Vec<ShardTask> = Vec::new();
        let mut task_of: Vec<Option<usize>> = vec![None; total_shards];
        let mut touched = vec![false; total_shards];
        for (query_idx, &(column, low, high)) in resolved.iter().enumerate() {
            let sharded = &self.table.columns()[column];
            for shard in sharded.overlapping(low, high) {
                // Fully covered shards are answered from their precomputed
                // totals right here — no task, no lock, no index probe; a
                // wide query only fans real work out to its two boundary
                // shards. They stay unmarked in `touched`, so maintenance
                // remains eligible to converge them.
                if let Some(total) = sharded.covered_total(shard, low, high) {
                    if let Some(obs) = obs {
                        obs.digest_hits.inc();
                    }
                    results[query_idx] = results[query_idx].merge(total);
                    continue;
                }
                let flat = self.flat_id(column, shard);
                touched[flat] = true;
                let task = *task_of[flat].get_or_insert_with(|| {
                    tasks.push(ShardTask {
                        column,
                        shard,
                        sub_queries: Vec::new(),
                    });
                    tasks.len() - 1
                });
                tasks[task].sub_queries.push((query_idx, low, high));
            }
        }
        drop(decompose_timer);

        let scan_timer = obs.map(|o| ScopeTimer::new(&o.scan_ns));
        let partials = self.run_shard_tasks(tasks);
        drop(scan_timer);

        let merge_timer = obs.map(|o| ScopeTimer::new(&o.merge_ns));
        for (query_idx, partial) in partials {
            results[query_idx] = results[query_idx].merge(partial);
        }
        drop(merge_timer);

        // Amortize the batch's maintenance budget across shards the batch
        // did not touch, off the serving path.
        self.spawn_maintenance(self.config.maintenance_steps, touched);

        Ok(results)
    }

    /// The single dispatch path for shard tasks: runs every task and
    /// returns the `(query index, partial result)` pairs, in arbitrary
    /// order (the merge is commutative).
    ///
    /// Tiny batches and single-worker pools execute inline — the caller
    /// would drain its own queue anyway, so queueing would only add
    /// overhead; everything else goes through the pool with shard-affine
    /// placement, the caller helping.
    fn run_shard_tasks(&self, tasks: Vec<ShardTask>) -> Vec<(usize, ScanResult)> {
        let inline = tasks.len() <= 1 || self.pool.workers() == 1;
        if inline {
            let expected: usize = tasks.iter().map(|t| t.sub_queries.len()).sum();
            let mut partials = Vec::with_capacity(expected);
            for task in &tasks {
                let column = &self.table.columns()[task.column];
                for &(query_idx, low, high) in &task.sub_queries {
                    partials.push((query_idx, column.query_shard(task.shard, low, high)));
                }
            }
            return partials;
        }
        struct BatchState {
            table: Arc<Table>,
            tasks: Vec<ShardTask>,
            partials: Mutex<Vec<(usize, ScanResult)>>,
        }
        let expected: usize = tasks.iter().map(|t| t.sub_queries.len()).sum();
        let affinities: Vec<usize> = tasks
            .iter()
            .map(|t| self.affinity[self.flat_id(t.column, t.shard)])
            .collect();
        let state = Arc::new(BatchState {
            table: Arc::clone(&self.table),
            tasks,
            partials: Mutex::new(Vec::with_capacity(expected)),
        });
        let jobs: Vec<(usize, Job)> = affinities
            .into_iter()
            .enumerate()
            .map(|(i, affinity)| {
                let state = Arc::clone(&state);
                let job: Job = Box::new(move || {
                    let task = &state.tasks[i];
                    let column = &state.table.columns()[task.column];
                    let mut local = Vec::with_capacity(task.sub_queries.len());
                    for &(query_idx, low, high) in &task.sub_queries {
                        local.push((query_idx, column.query_shard(task.shard, low, high)));
                    }
                    state
                        .partials
                        .lock()
                        .expect("batch partials poisoned")
                        .append(&mut local);
                });
                (affinity, job)
            })
            .collect();
        self.pool.run(jobs);
        let partials =
            std::mem::take(&mut *state.partials.lock().expect("batch partials poisoned"));
        partials
    }

    /// Enqueues a fire-and-forget maintenance job of `steps` budgeted
    /// steps. At most a few such jobs are outstanding at a time: under
    /// saturation further batches skip enqueueing (the idle hook and later
    /// batches keep convergence going), so the pool never accumulates a
    /// maintenance backlog.
    ///
    /// These per-batch jobs run even when
    /// [`ExecutorConfig::background_maintenance`] is on: the idle hook
    /// only fires when a worker finds every queue empty, so under a
    /// saturating workload it alone would starve cold shards. The
    /// per-batch budget is the load-independent floor that keeps the
    /// convergence guarantee; once every shard has converged the
    /// `is_all_converged` latch stops the traffic entirely.
    fn spawn_maintenance(&self, steps: usize, touched: Vec<bool>) {
        if steps == 0 || self.maintenance.is_all_converged() {
            return;
        }
        if self.pending_maintenance.fetch_add(1, Ordering::Relaxed) >= 4 {
            self.pending_maintenance.fetch_sub(1, Ordering::Relaxed);
            return;
        }
        /// Decrements the pending counter when dropped, so a panicking
        /// round (whose panic the pool catches to keep the worker alive)
        /// cannot leak a slot and permanently disable maintenance.
        struct PendingGuard(Arc<AtomicUsize>);
        impl Drop for PendingGuard {
            fn drop(&mut self) {
                self.0.fetch_sub(1, Ordering::Relaxed);
            }
        }
        let maintenance = Arc::clone(&self.maintenance);
        let guard = PendingGuard(Arc::clone(&self.pending_maintenance));
        // Rotate the job's home worker with the cursor so maintenance
        // pressure spreads over the pool.
        let affinity = self.maintenance.cursor.load(Ordering::Relaxed);
        self.pool.spawn(
            affinity,
            Box::new(move || {
                let _guard = guard;
                let timer = maintenance
                    .obs
                    .as_ref()
                    .map(|o| ScopeTimer::new(&o.maintain_ns));
                maintenance.run_round(steps, &touched);
                drop(timer);
            }),
        );
    }

    /// Executes a single query (a batch of one).
    pub fn execute_one(
        &self,
        column: &str,
        low: Value,
        high: Value,
    ) -> Result<ScanResult, EngineError> {
        Ok(self
            .execute_batch(std::slice::from_ref(&TableQuery::new(column, low, high)))?
            .remove(0))
    }

    /// Applies a batch of mutations to `column`, shard-parallel on the
    /// same persistent pool that serves query batches. Returns the
    /// per-mutation applied flags in request order (inserts always apply;
    /// deletes and updates only when a live victim exists).
    ///
    /// **Isolation.** Writers take the same per-shard mutexes as readers,
    /// so a writer only ever blocks traffic on the one shard it touches,
    /// and the shard's digest is updated atomically with the shard state.
    /// **Ordering.** Mutations are applied in request order *per shard*.
    /// An update whose `old` and `new` values route to different shards is
    /// decomposed into a delete and a dependent insert; the insert is
    /// sequenced after every same-batch single-shard mutation (it runs in
    /// a second wave), and is only attempted when the delete applied.
    /// **Convergence.** Every mutated shard re-enters maintenance — the
    /// executor's converged-shard cache and terminal latch are invalidated
    /// through the table's dirty flags and mutation epoch — so
    /// [`Executor::drive_to_convergence`], the per-batch maintenance floor
    /// and idle cycles fold the new deltas in and re-converge the table.
    ///
    /// ```
    /// use std::sync::Arc;
    /// use pi_core::mutation::Mutation;
    /// use pi_engine::{ColumnSpec, Executor, Table};
    ///
    /// let values: Vec<u64> = (0..10_000).map(|i| (i * 37) % 10_000).collect();
    /// let table = Arc::new(
    ///     Table::builder()
    ///         .column(ColumnSpec::new("a", values).with_shards(4))
    ///         .build(),
    /// );
    /// let executor = Executor::new(Arc::clone(&table));
    /// executor.drive_to_convergence(usize::MAX);
    ///
    /// // Mutating a converged table un-converges the touched shards...
    /// let applied = executor
    ///     .apply_mutations("a", &[Mutation::Insert(5), Mutation::Delete(7)])
    ///     .unwrap();
    /// assert_eq!(applied, vec![true, true]);
    /// assert!(!table.is_converged());
    ///
    /// // ...answers stay exact immediately, and maintenance re-converges.
    /// assert_eq!(executor.execute_one("a", 5, 5).unwrap().count, 2);
    /// executor.drive_to_convergence(usize::MAX);
    /// assert!(table.is_converged());
    /// ```
    pub fn apply_mutations(
        &self,
        column: &str,
        mutations: &[Mutation],
    ) -> Result<Vec<bool>, EngineError> {
        // With durability attached, writes must go through the
        // write-ahead log, serialized: the log's replay path is the
        // table's serial order, so the shard-parallel wave dispatch
        // below (whose cross-shard interleaving can differ from serial
        // order) is not used.
        if let Some(durable) = &self.durability {
            return durable
                .apply_mutations(column, mutations)
                .map_err(EngineError::from);
        }
        let column_idx = self
            .table
            .column_index(column)
            .ok_or_else(|| EngineError::UnknownColumn(column.to_string()))?;
        let sharded = &self.table.columns()[column_idx];

        // Wave 1: everything that is local to a single shard, in request
        // order per shard. A cross-shard update contributes its delete
        // here and parks its insert for wave 2.
        let shard_count = sharded.shard_count();
        let mut wave1: Vec<Vec<(usize, Mutation)>> = vec![Vec::new(); shard_count];
        /// Where a batch entry's applied flag comes from.
        enum Origin {
            /// Wave-1 op at this position of its shard's run.
            Direct,
            /// Cross-shard update: flag of the wave-1 delete gates a
            /// wave-2 insert of this value.
            SplitUpdate(Value),
        }
        let mut origins = Vec::with_capacity(mutations.len());
        for (i, m) in mutations.iter().enumerate() {
            match *m {
                Mutation::Insert(v) | Mutation::Delete(v) => {
                    wave1[sharded.shard_of(v)].push((i, *m));
                    origins.push(Origin::Direct);
                }
                Mutation::Update { old, new } => {
                    let (from, to) = (sharded.shard_of(old), sharded.shard_of(new));
                    if from == to {
                        wave1[from].push((i, *m));
                        origins.push(Origin::Direct);
                    } else {
                        wave1[from].push((i, Mutation::Delete(old)));
                        origins.push(Origin::SplitUpdate(new));
                    }
                }
            }
        }

        let mut applied = vec![false; mutations.len()];
        for (batch_idx, ok) in self.run_mutation_waves(column_idx, wave1) {
            applied[batch_idx] = ok;
        }

        // Wave 2: the inserts of cross-shard updates whose delete landed.
        let mut wave2: Vec<Vec<(usize, Mutation)>> = vec![Vec::new(); shard_count];
        let mut any = false;
        for (i, origin) in origins.iter().enumerate() {
            if let Origin::SplitUpdate(new) = *origin {
                if applied[i] {
                    wave2[sharded.shard_of(new)].push((i, Mutation::Insert(new)));
                    any = true;
                }
            }
        }
        if any {
            for (batch_idx, ok) in self.run_mutation_waves(column_idx, wave2) {
                applied[batch_idx] = ok;
            }
        }
        Ok(applied)
    }

    /// Dispatches one wave of per-shard mutation runs onto the pool
    /// (inline for trivial waves, like the query path) and returns the
    /// `(batch index, applied)` pairs.
    fn run_mutation_waves(
        &self,
        column_idx: usize,
        per_shard: Vec<Vec<(usize, Mutation)>>,
    ) -> Vec<(usize, bool)> {
        let tasks: Vec<(usize, Vec<(usize, Mutation)>)> = per_shard
            .into_iter()
            .enumerate()
            .filter(|(_, ops)| !ops.is_empty())
            .collect();
        let expected: usize = tasks.iter().map(|(_, ops)| ops.len()).sum();
        let apply_one = |shard: usize, ops: &[(usize, Mutation)]| -> Vec<(usize, bool)> {
            let muts: Vec<Mutation> = ops.iter().map(|&(_, m)| m).collect();
            let flags = self.table.columns()[column_idx].apply_shard_ops(shard, &muts);
            ops.iter().map(|&(i, _)| i).zip(flags).collect()
        };
        if tasks.len() <= 1 || self.pool.workers() == 1 {
            let mut out = Vec::with_capacity(expected);
            for (shard, ops) in &tasks {
                out.extend(apply_one(*shard, ops));
            }
            return out;
        }
        struct WaveState {
            table: Arc<Table>,
            column: usize,
            tasks: Vec<(usize, Vec<(usize, Mutation)>)>,
            flags: Mutex<Vec<(usize, bool)>>,
        }
        let affinities: Vec<usize> = tasks
            .iter()
            .map(|&(shard, _)| self.affinity[self.flat_id(column_idx, shard)])
            .collect();
        let state = Arc::new(WaveState {
            table: Arc::clone(&self.table),
            column: column_idx,
            tasks,
            flags: Mutex::new(Vec::with_capacity(expected)),
        });
        let jobs: Vec<(usize, Job)> = affinities
            .into_iter()
            .enumerate()
            .map(|(t, affinity)| {
                let state = Arc::clone(&state);
                let job: Job = Box::new(move || {
                    let (shard, ops) = &state.tasks[t];
                    let muts: Vec<Mutation> = ops.iter().map(|&(_, m)| m).collect();
                    let applied =
                        state.table.columns()[state.column].apply_shard_ops(*shard, &muts);
                    let mut local: Vec<(usize, bool)> =
                        ops.iter().map(|&(i, _)| i).zip(applied).collect();
                    state
                        .flags
                        .lock()
                        .expect("wave flags poisoned")
                        .append(&mut local);
                });
                (affinity, job)
            })
            .collect();
        self.pool.run(jobs);
        let flags = std::mem::take(&mut *state.flags.lock().expect("wave flags poisoned"));
        flags
    }

    /// Spends up to `steps` budgeted indexing steps, round-robin over all
    /// not-yet-converged shards, synchronously on the calling thread.
    /// Returns the number of steps actually performed (less than `steps`
    /// once the table nears convergence).
    pub fn maintain(&self, steps: usize) -> usize {
        self.maintenance.run_round(steps, &[])
    }

    /// Drives every shard of every column to convergence by repeated
    /// maintenance rounds, fanned out over the pool workers: each round
    /// hands the workers a shared [`StepBudget`] of one step per shard, so
    /// the round's total work stays bounded no matter how the steps
    /// interleave across threads. Returns the number of budgeted steps
    /// spent by these rounds (idle-cycle maintenance may converge shards
    /// in parallel for free).
    ///
    /// Convergence is deterministic (the paper's guarantee, per shard), so
    /// this always terminates; `max_steps` is a safety valve for tests.
    pub fn drive_to_convergence(&self, max_steps: usize) -> usize {
        let mut spent = 0;
        while !self.table.is_converged() && spent < max_steps {
            let round_cap = self.maintenance.addresses.len().min(max_steps - spent);
            let budget = Arc::new(StepBudget::new(round_cap));
            let performed = Arc::new(AtomicUsize::new(0));
            let workers = self.pool.workers().min(round_cap.max(1));
            let jobs: Vec<(usize, Job)> = (0..workers)
                .map(|w| {
                    let maintenance = Arc::clone(&self.maintenance);
                    let budget = Arc::clone(&budget);
                    let performed = Arc::clone(&performed);
                    let job: Job = Box::new(move || {
                        while budget.try_take() {
                            if maintenance.single_step() {
                                performed.fetch_add(1, Ordering::Relaxed);
                            } else {
                                // Nothing left to advance; return the
                                // unspent step and stop.
                                budget.give_back();
                                break;
                            }
                        }
                    });
                    (w, job)
                })
                .collect();
            self.pool.run(jobs);
            let performed = performed.load(Ordering::Relaxed);
            if performed == 0 && self.table.is_converged() {
                break;
            }
            // A zero-progress round with the table still unconverged is a
            // transient race, not exhaustion: concurrent cursor ticks
            // (sibling jobs, the idle hook) can make one sweep land only
            // on converged slots while another thread holds the work.
            // Loop again — every unconverged shard is always advanceable,
            // so someone is making progress.
            spent += performed;
        }
        spent
    }
}

/// The engine is the canonical [`pi_sched::BatchExecutor`]: a
/// [`pi_sched::Server`] front-end gives it admission control, batch
/// coalescing across clients, backpressure and idle-cycle maintenance.
impl BatchExecutor for Executor {
    type Request = TableQuery;
    type Response = ScanResult;
    type Error = EngineError;

    fn execute_batch(&self, batch: &[TableQuery]) -> Result<Vec<ScanResult>, EngineError> {
        Executor::execute_batch(self, batch)
    }

    fn idle_maintain(&self) -> bool {
        let worked = self.maintenance.idle_step();
        // Idle cycles double as the durability layer's checkpoint pulse:
        // merges completed by the step above may have crossed the
        // checkpoint-after-merges threshold. A failed opportunistic
        // checkpoint is not a serving error; the next durable write
        // surfaces it.
        if let Some(durable) = &self.durability {
            let _ = durable.maybe_checkpoint();
        }
        worked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{ColumnSpec, Table};
    use pi_core::budget::BudgetPolicy;
    use pi_core::testing::random_column;
    use pi_storage::scan::scan_range_sum;

    fn test_table(n: usize, shards: usize) -> (Arc<Table>, Vec<Value>, Vec<Value>) {
        let a = random_column(n, n as u64, 5).into_vec();
        let b: Vec<Value> = a
            .iter()
            .map(|v| v.wrapping_mul(7) % (2 * n as u64))
            .collect();
        let table = Arc::new(
            Table::builder()
                .column(ColumnSpec::new("a", a.clone()).with_shards(shards))
                .column(
                    ColumnSpec::new("b", b.clone())
                        .with_shards(shards)
                        .with_policy(BudgetPolicy::FixedDelta(0.5)),
                )
                .build(),
        );
        (table, a, b)
    }

    /// A config with synchronous-only maintenance, for tests that assert
    /// on exact foreground step counts.
    fn foreground_config(workers: usize, maintenance_steps: usize) -> ExecutorConfig {
        ExecutorConfig {
            worker_threads: workers,
            maintenance_steps,
            background_maintenance: false,
        }
    }

    #[test]
    fn batch_results_match_full_scan() {
        let (table, a, b) = test_table(20_000, 4);
        let executor = Executor::new(table);
        let batch: Vec<TableQuery> = (0..50)
            .map(|i| {
                let low = (i * 367) % 18_000;
                TableQuery::new(if i % 2 == 0 { "a" } else { "b" }, low, low + 2_000)
            })
            .collect();
        let results = executor.execute_batch(&batch).unwrap();
        for (q, r) in batch.iter().zip(&results) {
            let base = if q.column == "a" { &a } else { &b };
            assert_eq!(*r, scan_range_sum(base, q.low, q.high), "{q:?}");
        }
    }

    #[test]
    fn multi_worker_pool_matches_full_scan() {
        // Forces the pooled dispatch path even on a single-core host.
        let (table, a, b) = test_table(20_000, 8);
        let executor = Executor::with_config(table, foreground_config(4, 2));
        let batch: Vec<TableQuery> = (0..60)
            .map(|i| {
                let low = (i * 311) % 18_000;
                TableQuery::new(if i % 2 == 0 { "a" } else { "b" }, low, low + 3_000)
            })
            .collect();
        let results = executor.execute_batch(&batch).unwrap();
        for (q, r) in batch.iter().zip(&results) {
            let base = if q.column == "a" { &a } else { &b };
            assert_eq!(*r, scan_range_sum(base, q.low, q.high), "{q:?}");
        }
        assert!(executor.pool_stats().total_executed() > 0);
    }

    #[test]
    fn unknown_column_fails_the_batch() {
        let (table, _, _) = test_table(1_000, 2);
        let executor = Executor::new(table);
        let err = executor
            .execute_batch(&[TableQuery::new("nope", 0, 10)])
            .unwrap_err();
        assert_eq!(err, EngineError::UnknownColumn("nope".into()));
        assert!(err.to_string().contains("nope"));
    }

    #[test]
    fn maintenance_drives_convergence_without_client_queries() {
        let (table, a, _) = test_table(5_000, 4);
        let executor = Executor::with_config(Arc::clone(&table), foreground_config(2, 4));
        let spent = executor.drive_to_convergence(1_000_000);
        assert!(
            table.is_converged(),
            "table not converged after {spent} steps"
        );
        assert!(spent > 0);
        // Converged answers still exact.
        let r = executor.execute_one("a", 100, 3_000).unwrap();
        assert_eq!(r, scan_range_sum(&a, 100, 3_000));
    }

    #[test]
    fn maintenance_budget_is_respected() {
        let (table, _, _) = test_table(50_000, 8);
        let executor = Executor::with_config(Arc::clone(&table), foreground_config(2, 3));
        let performed = executor.maintain(3);
        assert!(performed <= 3);
        assert!(performed > 0);
    }

    #[test]
    fn background_maintenance_converges_an_unqueried_table() {
        let (table, _, _) = test_table(4_000, 4);
        let _executor = Executor::with_config(
            Arc::clone(&table),
            ExecutorConfig {
                worker_threads: 2,
                maintenance_steps: 0,
                background_maintenance: true,
            },
        );
        // No queries, no explicit maintenance: the pool's idle cycles must
        // converge every shard on their own.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
        while !table.is_converged() && std::time::Instant::now() < deadline {
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert!(table.is_converged(), "idle-cycle maintenance stalled");
    }

    #[test]
    fn empty_batch_and_empty_range() {
        let (table, _, _) = test_table(1_000, 4);
        let executor = Executor::new(table);
        assert_eq!(executor.execute_batch(&[]).unwrap(), vec![]);
        let r = executor.execute_one("a", 10, 5).unwrap();
        assert_eq!(r, ScanResult::EMPTY);
    }

    #[test]
    fn concurrent_clients_get_exact_answers() {
        let (table, a, b) = test_table(30_000, 4);
        let executor = Arc::new(Executor::with_config(
            Arc::clone(&table),
            ExecutorConfig::with_workers(4),
        ));
        std::thread::scope(|scope| {
            for client in 0..4 {
                let executor = Arc::clone(&executor);
                let a = &a;
                let b = &b;
                scope.spawn(move || {
                    for i in 0..30 {
                        let low = ((client * 7 + i) * 811) % 25_000;
                        let high = low + 3_000;
                        let column = if (client + i) % 2 == 0 { "a" } else { "b" };
                        let base = if column == "a" { a } else { b };
                        let r = executor.execute_one(column, low, high).unwrap();
                        assert_eq!(r, scan_range_sum(base, low, high));
                    }
                });
            }
        });
    }
}
