//! Batched, shard-parallel query execution with an amortized per-batch
//! indexing budget.
//!
//! The paper bounds the *extra* work any single query performs by the
//! indexing budget δ. The executor extends that guarantee to concurrent
//! serving:
//!
//! * **Fan-out** — each query of a batch is decomposed into one sub-query
//!   per overlapping shard; the per-(column, shard) sub-query lists are
//!   processed by a bounded worker pool in parallel and the partial
//!   [`ScanResult`]s are merged per query. A shard performs its budgeted
//!   δ-slice of indexing work for every sub-query it answers, on a shard
//!   that holds only ~`rows / shard_count` elements — so the extra work a
//!   query pays stays bounded even when it spans several shards.
//! * **Maintenance budget** — after answering, the executor spends at most
//!   [`ExecutorConfig::maintenance_steps`] additional empty-query steps
//!   per batch, round-robin over the not-yet-converged shards the batch
//!   did *not* touch. Cold shards therefore keep converging under any
//!   workload pattern without ever exceeding a fixed per-batch indexing
//!   budget — the engine-level analogue of the paper's robustness
//!   guarantee.
//!
//! The executor is `Sync`: any number of client threads may call
//! [`Executor::execute_batch`] concurrently on one shared instance. Shard
//! state is guarded by per-shard mutexes, so two clients only contend when
//! their queries genuinely touch the same shard.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use pi_storage::scan::ScanResult;
use pi_storage::Value;

use crate::table::Table;

/// A `SELECT SUM(column), COUNT(column) WHERE column BETWEEN low AND high`
/// request addressed to a [`Table`] column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableQuery {
    /// Name of the queried column.
    pub column: String,
    /// Lower predicate bound (inclusive).
    pub low: Value,
    /// Upper predicate bound (inclusive; `low > high` is the empty range).
    pub high: Value,
}

impl TableQuery {
    /// Creates a query.
    pub fn new(column: impl Into<String>, low: Value, high: Value) -> Self {
        TableQuery {
            column: column.into(),
            low,
            high,
        }
    }
}

/// Errors returned by the executor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A query addressed a column the table does not have.
    UnknownColumn(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::UnknownColumn(name) => write!(f, "unknown column {name:?}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// Executor tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecutorConfig {
    /// Maximum number of worker threads a single batch fans out to.
    /// Defaults to the machine's available parallelism.
    pub worker_threads: usize,
    /// Maintenance budget: maximum number of additional budgeted indexing
    /// steps (empty queries) spent per batch on shards the batch did not
    /// touch.
    pub maintenance_steps: usize,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        ExecutorConfig {
            worker_threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            maintenance_steps: 4,
        }
    }
}

/// One (column, shard) work item of a batch: every sub-query of the batch
/// that must visit this shard.
struct ShardTask {
    column: usize,
    shard: usize,
    /// `(query index in the batch, low, high)`.
    sub_queries: Vec<(usize, Value, Value)>,
}

/// Shard-parallel batch executor over a shared [`Table`].
pub struct Executor {
    table: Arc<Table>,
    config: ExecutorConfig,
    /// Flat `(column, shard)` addresses of every shard; the table shape is
    /// immutable after construction, so this is computed once.
    shard_addresses: Vec<(usize, usize)>,
    /// Round-robin cursor over `shard_addresses`, for maintenance.
    maintenance_cursor: AtomicUsize,
}

impl Executor {
    /// Creates an executor with default configuration.
    pub fn new(table: Arc<Table>) -> Self {
        Self::with_config(table, ExecutorConfig::default())
    }

    /// Creates an executor with an explicit configuration.
    pub fn with_config(table: Arc<Table>, config: ExecutorConfig) -> Self {
        let mut shard_addresses = Vec::with_capacity(table.total_shards());
        for (c, column) in table.columns().iter().enumerate() {
            for s in 0..column.shard_count() {
                shard_addresses.push((c, s));
            }
        }
        Executor {
            table,
            config,
            shard_addresses,
            maintenance_cursor: AtomicUsize::new(0),
        }
    }

    /// The table this executor serves.
    pub fn table(&self) -> &Arc<Table> {
        &self.table
    }

    /// The executor's configuration.
    pub fn config(&self) -> ExecutorConfig {
        self.config
    }

    /// Executes a batch of range-sum queries.
    ///
    /// Results come back in request order and are bit-identical to a full
    /// scan of the base column (per-query answers never depend on how far
    /// indexing has progressed). After answering, up to
    /// [`ExecutorConfig::maintenance_steps`] budgeted indexing steps are
    /// spent on untouched, unconverged shards.
    pub fn execute_batch(&self, queries: &[TableQuery]) -> Result<Vec<ScanResult>, EngineError> {
        // Resolve names and record workload statistics up front, so an
        // unknown column fails the whole batch before any work happens.
        let mut resolved = Vec::with_capacity(queries.len());
        for q in queries {
            let column = self
                .table
                .column_index(&q.column)
                .ok_or_else(|| EngineError::UnknownColumn(q.column.clone()))?;
            resolved.push((column, q.low, q.high));
        }
        for &(column, low, high) in &resolved {
            self.table.columns()[column].stats().record(low, high);
        }

        // Decompose the batch into per-(column, shard) sub-query lists.
        let mut tasks: Vec<ShardTask> = Vec::new();
        let mut task_of: std::collections::HashMap<(usize, usize), usize> =
            std::collections::HashMap::new();
        for (query_idx, &(column, low, high)) in resolved.iter().enumerate() {
            for shard in self.table.columns()[column].overlapping(low, high) {
                let task = *task_of.entry((column, shard)).or_insert_with(|| {
                    tasks.push(ShardTask {
                        column,
                        shard,
                        sub_queries: Vec::new(),
                    });
                    tasks.len() - 1
                });
                tasks[task].sub_queries.push((query_idx, low, high));
            }
        }

        let mut results = vec![ScanResult::EMPTY; queries.len()];
        let workers = self.config.worker_threads.max(1).min(tasks.len());
        if workers <= 1 {
            for task in &tasks {
                let column = &self.table.columns()[task.column];
                for &(query_idx, low, high) in &task.sub_queries {
                    let partial = column.query_shard(task.shard, low, high);
                    results[query_idx] = results[query_idx].merge(partial);
                }
            }
        } else {
            // Parallel fan-out: a bounded worker pool drains the task
            // list; each worker locks one shard at a time and returns its
            // (query, partial result) pairs for the final merge.
            let cursor = AtomicUsize::new(0);
            let table = &self.table;
            let tasks = &tasks;
            let partials: Vec<Vec<(usize, ScanResult)>> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        scope.spawn(|| {
                            let mut local = Vec::new();
                            loop {
                                let next = cursor.fetch_add(1, Ordering::Relaxed);
                                let Some(task) = tasks.get(next) else {
                                    break;
                                };
                                let column = &table.columns()[task.column];
                                for &(query_idx, low, high) in &task.sub_queries {
                                    let partial = column.query_shard(task.shard, low, high);
                                    local.push((query_idx, partial));
                                }
                            }
                            local
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("executor worker panicked"))
                    .collect()
            });
            for partial_list in partials {
                for (query_idx, partial) in partial_list {
                    results[query_idx] = results[query_idx].merge(partial);
                }
            }
        }

        // Amortize the batch's maintenance budget across shards the batch
        // did not touch.
        let touched: std::collections::HashSet<(usize, usize)> = task_of.into_keys().collect();
        self.maintain_excluding(self.config.maintenance_steps, &touched);

        Ok(results)
    }

    /// Executes a single query (a batch of one).
    pub fn execute_one(
        &self,
        column: &str,
        low: Value,
        high: Value,
    ) -> Result<ScanResult, EngineError> {
        Ok(self
            .execute_batch(std::slice::from_ref(&TableQuery::new(column, low, high)))?
            .remove(0))
    }

    /// Spends up to `steps` budgeted indexing steps, round-robin over all
    /// not-yet-converged shards. Returns the number of steps actually
    /// performed (less than `steps` once the table nears convergence).
    pub fn maintain(&self, steps: usize) -> usize {
        self.maintain_excluding(steps, &std::collections::HashSet::new())
    }

    fn maintain_excluding(
        &self,
        steps: usize,
        touched: &std::collections::HashSet<(usize, usize)>,
    ) -> usize {
        let total = self.shard_addresses.len();
        if total == 0 || steps == 0 {
            return 0;
        }
        let mut performed = 0;
        let mut visited = 0;
        while performed < steps && visited < total {
            let at = self.maintenance_cursor.fetch_add(1, Ordering::Relaxed) % total;
            visited += 1;
            let (c, s) = self.shard_addresses[at];
            if touched.contains(&(c, s)) {
                continue;
            }
            if self.table.columns()[c].advance_shard(s) {
                performed += 1;
            }
        }
        performed
    }

    /// Drives every shard of every column to convergence by repeated
    /// maintenance rounds. Returns the number of budgeted steps spent.
    ///
    /// Convergence is deterministic (the paper's guarantee, per shard), so
    /// this always terminates; `max_steps` is a safety valve for tests.
    pub fn drive_to_convergence(&self, max_steps: usize) -> usize {
        let mut spent = 0;
        while !self.table.is_converged() && spent < max_steps {
            let performed = self.maintain(self.table.total_shards());
            if performed == 0 {
                break;
            }
            spent += performed;
        }
        spent
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{ColumnSpec, Table};
    use pi_core::budget::BudgetPolicy;
    use pi_core::testing::random_column;
    use pi_storage::scan::scan_range_sum;

    fn test_table(n: usize, shards: usize) -> (Arc<Table>, Vec<Value>, Vec<Value>) {
        let a = random_column(n, n as u64, 5).into_vec();
        let b: Vec<Value> = a
            .iter()
            .map(|v| v.wrapping_mul(7) % (2 * n as u64))
            .collect();
        let table = Arc::new(
            Table::builder()
                .column(ColumnSpec::new("a", a.clone()).with_shards(shards))
                .column(
                    ColumnSpec::new("b", b.clone())
                        .with_shards(shards)
                        .with_policy(BudgetPolicy::FixedDelta(0.5)),
                )
                .build(),
        );
        (table, a, b)
    }

    #[test]
    fn batch_results_match_full_scan() {
        let (table, a, b) = test_table(20_000, 4);
        let executor = Executor::new(table);
        let batch: Vec<TableQuery> = (0..50)
            .map(|i| {
                let low = (i * 367) % 18_000;
                TableQuery::new(if i % 2 == 0 { "a" } else { "b" }, low, low + 2_000)
            })
            .collect();
        let results = executor.execute_batch(&batch).unwrap();
        for (q, r) in batch.iter().zip(&results) {
            let base = if q.column == "a" { &a } else { &b };
            assert_eq!(*r, scan_range_sum(base, q.low, q.high), "{q:?}");
        }
    }

    #[test]
    fn unknown_column_fails_the_batch() {
        let (table, _, _) = test_table(1_000, 2);
        let executor = Executor::new(table);
        let err = executor
            .execute_batch(&[TableQuery::new("nope", 0, 10)])
            .unwrap_err();
        assert_eq!(err, EngineError::UnknownColumn("nope".into()));
        assert!(err.to_string().contains("nope"));
    }

    #[test]
    fn maintenance_drives_convergence_without_client_queries() {
        let (table, a, _) = test_table(5_000, 4);
        let executor = Executor::new(Arc::clone(&table));
        let spent = executor.drive_to_convergence(1_000_000);
        assert!(
            table.is_converged(),
            "table not converged after {spent} steps"
        );
        assert!(spent > 0);
        // Converged answers still exact.
        let r = executor.execute_one("a", 100, 3_000).unwrap();
        assert_eq!(r, scan_range_sum(&a, 100, 3_000));
    }

    #[test]
    fn maintenance_budget_is_respected() {
        let (table, _, _) = test_table(50_000, 8);
        let executor = Executor::with_config(
            Arc::clone(&table),
            ExecutorConfig {
                worker_threads: 2,
                maintenance_steps: 3,
            },
        );
        let performed = executor.maintain(3);
        assert!(performed <= 3);
        assert!(performed > 0);
    }

    #[test]
    fn empty_batch_and_empty_range() {
        let (table, _, _) = test_table(1_000, 4);
        let executor = Executor::new(table);
        assert_eq!(executor.execute_batch(&[]).unwrap(), vec![]);
        let r = executor.execute_one("a", 10, 5).unwrap();
        assert_eq!(r, ScanResult::EMPTY);
    }

    #[test]
    fn concurrent_clients_get_exact_answers() {
        let (table, a, b) = test_table(30_000, 4);
        let executor = Arc::new(Executor::new(Arc::clone(&table)));
        std::thread::scope(|scope| {
            for client in 0..4 {
                let executor = Arc::clone(&executor);
                let a = &a;
                let b = &b;
                scope.spawn(move || {
                    for i in 0..30 {
                        let low = ((client * 7 + i) * 811) % 25_000;
                        let high = low + 3_000;
                        let column = if (client + i) % 2 == 0 { "a" } else { "b" };
                        let base = if column == "a" { a } else { b };
                        let r = executor.execute_one(column, low, high).unwrap();
                        assert_eq!(r, scan_range_sum(base, low, high));
                    }
                });
            }
        });
    }
}
