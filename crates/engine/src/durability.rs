//! Durability for [`Table`]s: write-ahead logging, checkpoints and
//! crash recovery, built on [`pi_durable`].
//!
//! ## Model
//!
//! A [`DurableTable`] wraps a shared [`Table`] and makes its *logical*
//! state — the live value multiset of every column — survive crashes:
//!
//! * Every mutation batch is framed into the write-ahead log **before**
//!   it is applied, under one writer mutex, so log order is exactly
//!   apply order. The batch is applied through the table's serial path
//!   ([`Table::apply_mutations`]), which replay re-runs verbatim — the
//!   recovered table re-applies (and re-rejects) each mutation
//!   identically.
//! * A checkpoint captures what the delta-sidecar model already
//!   maintains per shard: the immutable base snapshot plus the pending
//!   sidecar ("log the delta, snapshot the merged base"). The snapshot
//!   is saved durably **before** the log is truncated, so a crash at any
//!   point between the two leaves either the old (snapshot, long log) or
//!   the new (snapshot, empty log) — both recover to the same state.
//! * Recovery loads the newest valid snapshot, truncates the log's
//!   torn/corrupt tail to the longest valid prefix, and replays only the
//!   records logged after the snapshot (`seq > snapshot.wal_seq`).
//!
//! Indexing progress (refinement state, merge progress) is deliberately
//! not persisted: it is a cache the progressive model rebuilds as a side
//! effect of querying, and restarting it changes no answer.
//!
//! ## Checkpoint triggers
//!
//! Checkpoints run explicitly ([`DurableTable::checkpoint`]), from the
//! executor's idle-maintenance path, or opportunistically after a write
//! — whenever the log has grown past
//! [`DurabilityConfig::checkpoint_wal_bytes`] or the table's shards have
//! completed [`DurabilityConfig::checkpoint_after_merges`] delta merges
//! since the last checkpoint (a merge folds sidecar deltas into a new
//! base, which is precisely when re-snapshotting shrinks the replay
//! tail the most; the trigger listens through the merge hooks the table
//! fires at every merge boundary).

use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

use pi_core::mutation::{MergeHook, Mutation};
use pi_durable::snapshot::{
    latest_valid_snapshot, ColumnState, ShardState, SnapshotStore, TableSnapshot,
};
use pi_durable::wal::{scan_wal, FsyncPolicy, TailStatus, WalMetrics, WalStorage, WalWriter};
use pi_durable::WalRecord;
use pi_obs::MetricsRegistry;
use pi_storage::snapshot::CodecError;

use crate::table::{ShardedColumn, Table};

/// Durability tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct DurabilityConfig {
    /// When appended records are flushed and fsynced; see [`FsyncPolicy`].
    pub fsync: FsyncPolicy,
    /// Checkpoint once this many log bytes accumulated since the last
    /// checkpoint (bounds recovery's replay work).
    pub checkpoint_wal_bytes: u64,
    /// Checkpoint once the table's shards completed this many pending-
    /// delta merges since the last checkpoint (the natural snapshot
    /// boundary: merged deltas no longer need replaying).
    pub checkpoint_after_merges: u64,
    /// How many snapshots to retain; older ones are pruned after each
    /// checkpoint. At least 2 keeps a fallback should the newest turn
    /// out corrupt on disk.
    pub snapshots_kept: usize,
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        DurabilityConfig {
            fsync: FsyncPolicy::EveryN(32),
            checkpoint_wal_bytes: 4 << 20,
            checkpoint_after_merges: 8,
            snapshots_kept: 2,
        }
    }
}

/// Errors surfaced by the durability layer.
#[derive(Debug)]
pub enum DurabilityError {
    /// The log or snapshot storage failed.
    Io(io::Error),
    /// A mutation batch addressed a column the table does not have.
    UnknownColumn(String),
    /// A persisted structure failed to decode.
    Corrupt(CodecError),
    /// Recovery found no valid snapshot in the store.
    NoSnapshot,
    /// An exclusive-table operation (rebalance) was requested while other
    /// handles to the table are alive.
    TableShared,
}

impl std::fmt::Display for DurabilityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurabilityError::Io(e) => write!(f, "durability I/O error: {e}"),
            DurabilityError::UnknownColumn(name) => write!(f, "unknown column {name:?}"),
            DurabilityError::Corrupt(e) => write!(f, "corrupt durable state: {e}"),
            DurabilityError::NoSnapshot => write!(f, "no valid snapshot to recover from"),
            DurabilityError::TableShared => {
                write!(f, "operation needs exclusive table access")
            }
        }
    }
}

impl std::error::Error for DurabilityError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DurabilityError::Io(e) => Some(e),
            DurabilityError::Corrupt(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for DurabilityError {
    fn from(e: io::Error) -> Self {
        DurabilityError::Io(e)
    }
}

impl From<CodecError> for DurabilityError {
    fn from(e: CodecError) -> Self {
        DurabilityError::Corrupt(e)
    }
}

/// What recovery did; returned by [`DurableTable::recover`].
#[derive(Debug)]
pub struct RecoveryReport {
    /// Identifier of the snapshot recovery started from.
    pub snapshot_id: u64,
    /// The snapshot's WAL position; records at or below it were skipped.
    pub snapshot_wal_seq: u64,
    /// WAL records replayed (mutation batches and rebalances past the
    /// snapshot).
    pub replayed_records: u64,
    /// How the log's tail ended before truncation.
    pub tail: TailStatus,
    /// Torn/corrupt tail bytes truncated from the log.
    pub truncated_bytes: u64,
    /// Wall time the recovery took.
    pub duration: Duration,
}

/// The log writer plus the byte watermark of the last checkpoint (the
/// bytes-based checkpoint trigger diffs against it).
struct WalState {
    writer: WalWriter,
    bytes_at_checkpoint: u64,
}

/// A [`Table`] whose mutations are write-ahead logged and whose state is
/// periodically checkpointed; see the [module docs](self).
///
/// Reads go straight to [`DurableTable::table`] — queries never touch
/// the log. Writes go through [`DurableTable::apply_mutations`], which
/// serializes them (one writer mutex) to keep log order equal to apply
/// order; shard-parallel write dispatch is incompatible with a
/// sequential log.
pub struct DurableTable {
    table: Arc<Table>,
    wal: Mutex<WalState>,
    store: Mutex<Box<dyn SnapshotStore>>,
    /// Writers hold `read`, checkpoint holds `write`: a checkpoint sees
    /// no concurrent mutations, while normal writers never block each
    /// other here (the wal mutex serializes them anyway).
    quiesce: RwLock<()>,
    next_snapshot_id: AtomicU64,
    /// Total pending-delta merges completed across every shard, bumped
    /// by the merge hooks; the merge-based checkpoint trigger diffs it
    /// against `merges_at_checkpoint`.
    merge_events: Arc<AtomicU64>,
    merges_at_checkpoint: AtomicU64,
    /// Guards against re-entrant / concurrent opportunistic checkpoints.
    checkpointing: AtomicBool,
    config: DurabilityConfig,
    metrics: Option<Arc<WalMetrics>>,
}

impl DurableTable {
    /// Wraps a freshly built table: truncates the log, writes snapshot 0
    /// as the recovery baseline and starts logging. Existing bytes in
    /// `wal` are discarded — use [`DurableTable::recover`] to resume
    /// from persisted state instead.
    pub fn create(
        mut table: Table,
        wal: Box<dyn WalStorage>,
        store: Box<dyn SnapshotStore>,
        config: DurabilityConfig,
        registry: Option<&MetricsRegistry>,
    ) -> Result<DurableTable, DurabilityError> {
        let metrics = registry.map(WalMetrics::register);
        let merge_events = Arc::new(AtomicU64::new(0));
        let hook: MergeHook = {
            let merge_events = Arc::clone(&merge_events);
            Arc::new(move |_merges| {
                merge_events.fetch_add(1, Ordering::Relaxed);
            })
        };
        table.attach_merge_hooks(hook);
        let mut writer = WalWriter::new(wal, config.fsync, 1);
        writer.set_metrics(metrics.clone());
        let durable = DurableTable {
            table: Arc::new(table),
            wal: Mutex::new(WalState {
                writer,
                bytes_at_checkpoint: 0,
            }),
            store: Mutex::new(store),
            quiesce: RwLock::new(()),
            next_snapshot_id: AtomicU64::new(0),
            merge_events,
            merges_at_checkpoint: AtomicU64::new(0),
            checkpointing: AtomicBool::new(false),
            config,
            metrics,
        };
        durable.checkpoint()?;
        Ok(durable)
    }

    /// Rebuilds a durable table from persisted state: loads the newest
    /// valid snapshot, truncates the log's invalid tail, replays the
    /// records logged after the snapshot and resumes logging after the
    /// highest replayed sequence number. The recovered table answers
    /// every query exactly like one that applied the durable mutation
    /// prefix in memory.
    pub fn recover(
        mut wal: Box<dyn WalStorage>,
        store: Box<dyn SnapshotStore>,
        config: DurabilityConfig,
        registry: Option<&MetricsRegistry>,
    ) -> Result<(DurableTable, RecoveryReport), DurabilityError> {
        let started = Instant::now();
        let snapshot = latest_valid_snapshot(store.as_ref())?.ok_or(DurabilityError::NoSnapshot)?;
        let TableSnapshot {
            snapshot_id,
            wal_seq,
            columns,
        } = snapshot;
        let mut restored = Vec::with_capacity(columns.len());
        for state in columns {
            let ColumnState {
                name,
                algorithm,
                policy,
                boundaries,
                shards,
            } = state;
            let parts = shards
                .into_iter()
                .map(|ShardState { base, sidecar }| (base, sidecar))
                .collect();
            let mut column = ShardedColumn::restore(
                name,
                algorithm,
                policy,
                boundaries,
                parts,
                pi_core::tuning::TuningParameters::calibrated(),
            );
            if let Some(registry) = registry {
                column.attach_metrics(registry);
            }
            restored.push(column);
        }
        let mut table = Table::from_columns(restored);

        let bytes = wal.read_all()?;
        let scan = scan_wal(&bytes);
        let truncated_bytes = bytes.len() as u64 - scan.valid_len;
        if truncated_bytes > 0 {
            wal.truncate(scan.valid_len)?;
        }
        let mut replayed_records = 0u64;
        let mut last_seq = wal_seq;
        for (seq, record) in &scan.records {
            last_seq = last_seq.max(*seq);
            if *seq <= wal_seq {
                // Already reflected in the snapshot (a crash before the
                // post-checkpoint truncation leaves such records behind).
                continue;
            }
            match record {
                WalRecord::MutationBatch { column, ops } => {
                    if table.apply_mutations(column, ops).is_none() {
                        return Err(DurabilityError::UnknownColumn(column.clone()));
                    }
                    replayed_records += 1;
                }
                WalRecord::Rebalance { columns } => {
                    for name in columns {
                        table.rebalance_column(name);
                    }
                    replayed_records += 1;
                }
                WalRecord::Checkpoint { .. } => {}
            }
        }

        let metrics = registry.map(WalMetrics::register);
        let merge_events = Arc::new(AtomicU64::new(0));
        let hook: MergeHook = {
            let merge_events = Arc::clone(&merge_events);
            Arc::new(move |_merges| {
                merge_events.fetch_add(1, Ordering::Relaxed);
            })
        };
        table.attach_merge_hooks(hook);
        let mut writer = WalWriter::new(wal, config.fsync, last_seq + 1);
        writer.set_metrics(metrics.clone());
        let duration = started.elapsed();
        if let Some(metrics) = &metrics {
            metrics.replay_records.add(replayed_records);
            metrics.recovery_ms.set(duration.as_secs_f64() * 1e3);
        }
        let durable = DurableTable {
            table: Arc::new(table),
            wal: Mutex::new(WalState {
                writer,
                bytes_at_checkpoint: 0,
            }),
            store: Mutex::new(store),
            quiesce: RwLock::new(()),
            next_snapshot_id: AtomicU64::new(snapshot_id + 1),
            merge_events,
            merges_at_checkpoint: AtomicU64::new(0),
            checkpointing: AtomicBool::new(false),
            config,
            metrics,
        };
        let report = RecoveryReport {
            snapshot_id,
            snapshot_wal_seq: wal_seq,
            replayed_records,
            tail: scan.tail,
            truncated_bytes,
            duration,
        };
        Ok((durable, report))
    }

    /// The wrapped table. Reads (queries, maintenance) go straight to it;
    /// **mutations must not** — only [`DurableTable::apply_mutations`]
    /// keeps the log and the table in step.
    pub fn table(&self) -> &Arc<Table> {
        &self.table
    }

    /// The durability configuration.
    pub fn config(&self) -> DurabilityConfig {
        self.config
    }

    /// Applies a mutation batch durably: the batch is framed into the
    /// log first (fsynced per the [`FsyncPolicy`]) and then applied
    /// through the table's serial path, both under the writer mutex so
    /// log order is apply order. Returns the per-mutation applied flags.
    ///
    /// May trigger an opportunistic checkpoint afterwards (off the
    /// writer mutex) when a growth threshold was crossed.
    pub fn apply_mutations(
        &self,
        column: &str,
        mutations: &[Mutation],
    ) -> Result<Vec<bool>, DurabilityError> {
        if mutations.is_empty() {
            return Ok(Vec::new());
        }
        let flags = {
            let _quiesce = self.quiesce.read().expect("quiesce lock poisoned");
            if self.table.column_index(column).is_none() {
                return Err(DurabilityError::UnknownColumn(column.to_string()));
            }
            let mut wal = self.wal.lock().expect("wal lock poisoned");
            wal.writer.append(&WalRecord::MutationBatch {
                column: column.to_string(),
                ops: mutations.to_vec(),
            })?;
            self.table
                .apply_mutations(column, mutations)
                .expect("column existence checked above")
        };
        self.maybe_checkpoint()?;
        Ok(flags)
    }

    /// Flushes the group-commit buffer: everything appended so far
    /// becomes durable regardless of the fsync policy. Called on drop as
    /// a best effort, and by checkpoints.
    pub fn flush(&self) -> Result<(), DurabilityError> {
        let mut wal = self.wal.lock().expect("wal lock poisoned");
        wal.writer.commit()?;
        Ok(())
    }

    /// Log bytes appended since the last checkpoint (the state the
    /// bytes-based trigger watches).
    pub fn wal_bytes_since_checkpoint(&self) -> u64 {
        let wal = self.wal.lock().expect("wal lock poisoned");
        wal.writer.bytes_appended() - wal.bytes_at_checkpoint
    }

    /// Pending-delta merges completed since the last checkpoint (the
    /// state the merge-based trigger watches).
    pub fn merges_since_checkpoint(&self) -> u64 {
        self.merge_events.load(Ordering::Relaxed)
            - self.merges_at_checkpoint.load(Ordering::Relaxed)
    }

    /// Checkpoints now: quiesces writers, commits the log, captures a
    /// whole-table snapshot stamped with the log position, saves it
    /// durably, prunes old snapshots and only then truncates the log.
    /// Returns the new snapshot's id.
    pub fn checkpoint(&self) -> Result<u64, DurabilityError> {
        let _quiesce = self.quiesce.write().expect("quiesce lock poisoned");
        let mut wal = self.wal.lock().expect("wal lock poisoned");
        wal.writer.commit()?;
        let id = self.next_snapshot_id.fetch_add(1, Ordering::SeqCst);
        let snapshot = self.capture(id, wal.writer.last_seq());
        let encoded = snapshot.encode();
        {
            let mut store = self.store.lock().expect("store lock poisoned");
            store.save(id, &encoded)?;
            let ids = store.ids()?;
            let keep = self.config.snapshots_kept.max(1);
            if ids.len() > keep {
                for &old in &ids[..ids.len() - keep] {
                    store.remove(old)?;
                }
            }
        }
        // The snapshot is durable: the log's history is now redundant.
        // A crash before (or during) the truncation is safe — replay
        // skips records at or below the snapshot's sequence number.
        wal.writer.truncate_all()?;
        wal.writer
            .append(&WalRecord::Checkpoint { snapshot_id: id })?;
        wal.writer.commit()?;
        wal.bytes_at_checkpoint = wal.writer.bytes_appended();
        self.merges_at_checkpoint
            .store(self.merge_events.load(Ordering::Relaxed), Ordering::SeqCst);
        if let Some(metrics) = &self.metrics {
            metrics.checkpoints.inc();
        }
        Ok(id)
    }

    /// Checkpoints when a growth threshold was crossed (log bytes or
    /// completed merges since the last checkpoint); cheap no-op
    /// otherwise. Concurrent callers collapse to one checkpoint. Returns
    /// whether a checkpoint ran. The executor calls this from its
    /// idle-maintenance path; durable writes call it after releasing the
    /// writer mutex.
    pub fn maybe_checkpoint(&self) -> Result<bool, DurabilityError> {
        let due = self.wal_bytes_since_checkpoint() >= self.config.checkpoint_wal_bytes
            || self.merges_since_checkpoint() >= self.config.checkpoint_after_merges;
        if !due {
            return Ok(false);
        }
        if self.checkpointing.swap(true, Ordering::SeqCst) {
            return Ok(false);
        }
        let result = self.checkpoint();
        self.checkpointing.store(false, Ordering::SeqCst);
        result.map(|_| true)
    }

    /// Durable analogue of [`Table::rebalance_if_drifted`]: re-balances
    /// every drifted column, logs a [`WalRecord::Rebalance`] marker at
    /// this point of the mutation stream and checkpoints immediately, so
    /// recovery can never resurrect stale pre-rebalance shard
    /// boundaries. Requires exclusive access to the wrapped table
    /// (maintenance windows — no executor attached, no other `Arc`
    /// clones alive); returns [`DurabilityError::TableShared`] otherwise.
    pub fn rebalance_if_drifted(&mut self, threshold: f64) -> Result<usize, DurabilityError> {
        let drifted: Vec<String> = self
            .table
            .columns()
            .iter()
            .filter(|c| c.weight_drift() > threshold)
            .map(|c| c.name().to_string())
            .collect();
        if drifted.is_empty() {
            return Ok(0);
        }
        {
            let table = Arc::get_mut(&mut self.table).ok_or(DurabilityError::TableShared)?;
            for name in &drifted {
                table.rebalance_column(name);
            }
        }
        {
            let mut wal = self.wal.lock().expect("wal lock poisoned");
            wal.writer.append(&WalRecord::Rebalance {
                columns: drifted.clone(),
            })?;
            wal.writer.commit()?;
        }
        // The marker alone already prevents stale boundaries on replay;
        // the immediate checkpoint also makes the re-sharded layout the
        // new baseline so recovery need not redo the rebalance at all.
        self.checkpoint()?;
        Ok(drifted.len())
    }

    /// Captures the whole-table snapshot under the (already held)
    /// quiesce write lock. Concurrent *maintenance* is harmless: it
    /// never changes a shard's live multiset, and
    /// [`ShardedColumn::snapshot_state`] normalizes however far each
    /// shard's refinement or merge has progressed.
    fn capture(&self, snapshot_id: u64, wal_seq: u64) -> TableSnapshot {
        let columns = self
            .table
            .columns()
            .iter()
            .map(|column| {
                let (boundaries, shards) = column.snapshot_state();
                ColumnState {
                    name: column.name().to_string(),
                    algorithm: column.algorithm(),
                    policy: column.policy(),
                    boundaries,
                    shards: shards
                        .into_iter()
                        .map(|(base, sidecar)| ShardState { base, sidecar })
                        .collect(),
                }
            })
            .collect();
        TableSnapshot {
            snapshot_id,
            wal_seq,
            columns,
        }
    }
}

impl Drop for DurableTable {
    fn drop(&mut self) {
        // Best-effort flush of the group-commit buffer on clean
        // shutdown; a crash (the process dying without drop) loses at
        // most the records the fsync policy allowed to be buffered.
        if let Ok(mut wal) = self.wal.lock() {
            let _ = wal.writer.commit();
        }
    }
}
