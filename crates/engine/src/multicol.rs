//! Multi-column queries over progressive indexes: conjunctive
//! predicates and grouped aggregates.
//!
//! The paper evaluates each progressive index on single-column range
//! scans; this module turns a set of independently-refined columns into
//! a small progressive *database*:
//!
//! * [`MultiTable`] — a row store of heterogeneous columns
//!   ([`ErasedColumn`]: u64 / i64 / f64 / string) kept row-aligned under
//!   one `RwLock`, wrapping an inner `u64` [`Table`] that indexes each
//!   column's order-preserving codes. Row mutations
//!   ([`RowMutation`]) update both sides under the write lock, so the
//!   row store and the shard multisets always agree.
//! * [`MultiExecutor`] — executes conjunctions
//!   (`WHERE a BETWEEN .. AND b BETWEEN ..`) as *drive one column,
//!   validate the rest*: the [`planner`](crate::planner) picks the
//!   driving predicate from estimated selectivity + refinement state ρ,
//!   the driving scan goes through the normal shard-parallel
//!   [`Executor`] path (paying the paper's per-query δ of refinement
//!   work), and every surviving row is validated **exactly** against
//!   all predicates over the full typed keys. Answers are exact at
//!   every refinement stage and under concurrent mutation.
//! * Grouped aggregates ([`MultiExecutor::grouped`]) —
//!   `SUM/COUNT/MIN/MAX GROUP BY bucket` answered from per-shard
//!   [`DigestTree`]s behind a hot-range [`AggregateCache`], invalidated
//!   through the per-shard mutation counters
//!   ([`ShardedColumn::shard_mutation_count`]): a completed write bumps
//!   the counter before releasing its shard lock, so a later read can
//!   never serve the pre-mutation digest.
//!
//! ## Exactness under concurrency
//!
//! Conjunction reads hold the row store's read lock across the driving
//! scan and validation; writers hold the write lock across both the row
//! store update and the inner shard mutations. Lock order is always
//! `row store → shard mutex`, on both paths, so there is no deadlock
//! and every conjunction observes a consistent row-store/shard state.
//! Validation compares **full typed keys** — prefix-encoded string
//! candidates over-selected in code space are corrected here, which is
//! also why predicate order can never change a result set.
//!
//! ## Grouped-aggregate semantics
//!
//! Groups are **whole grid buckets** in code space: bucket `b` of width
//! `w` covers codes `[b·w, (b+1)·w)`, and a bucket participates as soon
//! as the query range touches it. Cells are exact over the bucket's
//! live rows. `SUM` decodes exactly for `u64`/`i64` columns, `MIN`/`MAX`
//! decode exactly for every injective encoding (`u64`/`i64`/`f64`);
//! string groups serve `COUNT` only (an 8-byte prefix code does not
//! determine the full key).

use std::collections::HashMap;
use std::sync::{Arc, Mutex, RwLock};

use pi_core::budget::BudgetPolicy;
use pi_core::mutation::Mutation;
use pi_obs::{Counter, MetricsRegistry};
use pi_storage::digest::{bucket_of, DigestTree};
use pi_storage::encoding::OrderedKey;
use pi_storage::scan::ScanResult;
use pi_storage::Value;

use crate::erased::{ErasedColumn, ErasedKey, ErasedSum};
use crate::executor::{EngineError, Executor, ExecutorConfig, TableQuery};
use crate::planner::{choose_driving, Plan, PredicateStats};
use crate::table::{AlgorithmChoice, ColumnSpec, ShardedColumn, Table};

/// Specification of one (possibly heterogeneous) column of a
/// [`MultiTable`].
#[derive(Debug, Clone)]
pub struct MultiColumnSpec {
    /// Column name used to address predicates.
    pub name: String,
    /// The column's full typed keys, in row order.
    pub keys: ErasedColumn,
    /// Number of range shards for the inner code index.
    pub shards: usize,
    /// Per-shard indexing budget policy.
    pub policy: BudgetPolicy,
    /// Algorithm selection for the inner code index.
    pub choice: AlgorithmChoice,
}

impl MultiColumnSpec {
    /// A column with default sharding, budget and algorithm selection.
    pub fn new(name: impl Into<String>, keys: ErasedColumn) -> Self {
        MultiColumnSpec {
            name: name.into(),
            keys,
            shards: 4,
            policy: BudgetPolicy::FixedDelta(0.25),
            choice: AlgorithmChoice::default(),
        }
    }

    /// Sets the shard count (builder style).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Sets the per-shard budget policy (builder style).
    pub fn with_policy(mut self, policy: BudgetPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the algorithm selection (builder style).
    pub fn with_choice(mut self, choice: AlgorithmChoice) -> Self {
        self.choice = choice;
        self
    }
}

/// The row-aligned side of a [`MultiTable`]: full typed keys per column,
/// plus the live bitmap. Rows are append-only — a delete marks its slot
/// dead, an update replaces keys in place — so a row id stays stable for
/// the table's lifetime.
struct RowStore {
    columns: Vec<ErasedColumn>,
    live: Vec<bool>,
    live_count: usize,
}

/// A mutation addressed to one **row** of a [`MultiTable`].
#[derive(Debug, Clone)]
pub enum RowMutation {
    /// Appends a row (one key per column, in column order). Always
    /// applies; the new row's id is the append index.
    Insert(Vec<ErasedKey>),
    /// Marks row `0` dead and removes its values from every column's
    /// index. Rejected (returns `false`) when the row is dead or out of
    /// range.
    Delete(usize),
    /// Replaces the row's keys in place (same row id). Rejected when the
    /// row is dead or out of range.
    Update {
        /// The row to update.
        row: usize,
        /// The row's new keys (one per column, in column order).
        keys: Vec<ErasedKey>,
    },
}

/// One `BETWEEN` predicate of a conjunction.
#[derive(Debug, Clone)]
pub struct Predicate {
    /// The predicate's column.
    pub column: String,
    /// Lower bound (inclusive), in the column's key domain.
    pub low: ErasedKey,
    /// Upper bound (inclusive); `low > high` is the empty range.
    pub high: ErasedKey,
}

impl Predicate {
    /// Creates a predicate.
    pub fn new(column: impl Into<String>, low: ErasedKey, high: ErasedKey) -> Self {
        Predicate {
            column: column.into(),
            low,
            high,
        }
    }

    /// Convenience constructor for `u64` bounds.
    pub fn between_u64(column: impl Into<String>, low: u64, high: u64) -> Self {
        Predicate::new(column, ErasedKey::U64(low), ErasedKey::U64(high))
    }
}

/// The exact answer to one conjunction.
#[derive(Debug, Clone, PartialEq)]
pub struct ConjunctionAnswer {
    /// Number of live rows satisfying **every** predicate.
    pub count: u64,
    /// Per-predicate-column sums over the surviving rows, aligned with
    /// the conjunction's predicate order; `None` where the column's
    /// domain has no exact sum (f64, string).
    pub sums: Vec<Option<ErasedSum>>,
    /// Index of the predicate that drove the scan (observability; the
    /// result set never depends on it).
    pub driving: usize,
}

/// How the executor picks the driving predicate of a conjunction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlanMode {
    /// Score every predicate (selectivity + refinement state) and drive
    /// the cheapest — the planner the bench sweep measures.
    #[default]
    Planned,
    /// Always drive the first predicate — the baseline the planner is
    /// measured against.
    FirstPredicate,
}

/// One group's aggregate row, decoded into the column's key domain.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupRow {
    /// The grid bucket (codes `[bucket·width, (bucket+1)·width)`).
    pub bucket: u64,
    /// Live rows in the bucket.
    pub count: u64,
    /// Exact sum of the bucket's keys; `None` where the domain has no
    /// exact sum (f64, string).
    pub sum: Option<ErasedSum>,
    /// Smallest key in the bucket; `None` for string columns (prefix
    /// codes do not determine full keys).
    pub min: Option<ErasedKey>,
    /// Largest key in the bucket; `None` for string columns.
    pub max: Option<ErasedKey>,
}

/// A heterogeneous multi-column table: the row-aligned typed store plus
/// the inner `u64` [`Table`] of progressive code indexes.
pub struct MultiTable {
    inner: Arc<Table>,
    names: Vec<String>,
    store: RwLock<RowStore>,
}

/// Builder for [`MultiTable`].
#[derive(Default)]
pub struct MultiTableBuilder {
    specs: Vec<MultiColumnSpec>,
    metrics: Option<Arc<MetricsRegistry>>,
}

impl MultiTableBuilder {
    /// Adds a column.
    pub fn column(mut self, spec: MultiColumnSpec) -> Self {
        self.specs.push(spec);
        self
    }

    /// Registers the inner table's index metrics in `registry` (see
    /// [`crate::table::TableBuilder::metrics`]).
    pub fn metrics(mut self, registry: Arc<MetricsRegistry>) -> Self {
        self.metrics = Some(registry);
        self
    }

    /// Builds the table.
    ///
    /// # Panics
    /// Panics on duplicate column names, on columns of unequal row
    /// counts, and on an empty column list.
    pub fn build(self) -> MultiTable {
        assert!(!self.specs.is_empty(), "a table needs at least one column");
        let rows = self.specs[0].keys.len();
        let mut builder = Table::builder();
        let mut names = Vec::with_capacity(self.specs.len());
        let mut columns = Vec::with_capacity(self.specs.len());
        for spec in self.specs {
            assert_eq!(
                spec.keys.len(),
                rows,
                "column {:?} must hold the same row count as its siblings",
                spec.name
            );
            builder = builder.column(
                ColumnSpec::new(spec.name.clone(), spec.keys.codes())
                    .with_shards(spec.shards)
                    .with_policy(spec.policy)
                    .with_choice(spec.choice),
            );
            names.push(spec.name);
            columns.push(spec.keys);
        }
        if let Some(registry) = self.metrics {
            builder = builder.metrics(registry);
        }
        MultiTable {
            inner: Arc::new(builder.build()),
            names,
            store: RwLock::new(RowStore {
                columns,
                live: vec![true; rows],
                live_count: rows,
            }),
        }
    }
}

impl MultiTable {
    /// Starts building a table.
    pub fn builder() -> MultiTableBuilder {
        MultiTableBuilder::default()
    }

    /// The inner `u64` table of code indexes. **All writes must go
    /// through [`MultiTable::apply_rows`]** — mutating the inner table
    /// directly desynchronises it from the row store.
    pub fn inner(&self) -> &Arc<Table> {
        &self.inner
    }

    /// Column names, in column order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Number of live rows.
    pub fn live_rows(&self) -> usize {
        self.store.read().expect("row store poisoned").live_count
    }

    /// Applies a batch of row mutations in order, under one row-store
    /// write lock. Returns the per-mutation applied flags.
    ///
    /// # Panics
    /// Panics when an insert/update's key list does not match the
    /// table's column count or a key's domain does not match its
    /// column's (programmer errors; dead/out-of-range rows are runtime
    /// conditions and return `false`).
    pub fn apply_rows(&self, mutations: &[RowMutation]) -> Vec<bool> {
        let mut store = self.store.write().expect("row store poisoned");
        mutations
            .iter()
            .map(|m| self.apply_row(&mut store, m))
            .collect()
    }

    fn apply_row(&self, store: &mut RowStore, mutation: &RowMutation) -> bool {
        match mutation {
            RowMutation::Insert(keys) => {
                assert_eq!(
                    keys.len(),
                    store.columns.len(),
                    "insert arity must match the column count"
                );
                for (c, key) in keys.iter().enumerate() {
                    let code = key.to_code();
                    store.columns[c].push(key.clone());
                    let applied = self.inner.columns()[c]
                        .apply_mutations(std::slice::from_ref(&Mutation::Insert(code)));
                    debug_assert_eq!(applied, vec![true], "inserts always apply");
                }
                store.live.push(true);
                store.live_count += 1;
                true
            }
            RowMutation::Delete(row) => {
                let row = *row;
                if row >= store.live.len() || !store.live[row] {
                    return false;
                }
                store.live[row] = false;
                store.live_count -= 1;
                for (c, column) in store.columns.iter().enumerate() {
                    let code = column.code_at(row);
                    let flags = self.inner.columns()[c]
                        .apply_mutations(std::slice::from_ref(&Mutation::Delete(code)));
                    debug_assert_eq!(
                        flags,
                        vec![true],
                        "a live row's code must exist in its index"
                    );
                }
                true
            }
            RowMutation::Update { row, keys } => {
                let row = *row;
                if row >= store.live.len() || !store.live[row] {
                    return false;
                }
                assert_eq!(
                    keys.len(),
                    store.columns.len(),
                    "update arity must match the column count"
                );
                for (c, key) in keys.iter().enumerate() {
                    let new = key.to_code();
                    let old_key = store.columns[c].replace(row, key.clone());
                    let old = old_key.to_code();
                    let flags = self.inner.columns()[c]
                        .apply_mutations(std::slice::from_ref(&Mutation::Update { old, new }));
                    debug_assert_eq!(
                        flags,
                        vec![true],
                        "a live row's code must exist in its index"
                    );
                }
                true
            }
        }
    }

    /// Resolves a column name to its position (row-store columns and
    /// inner columns are built in the same order).
    fn position(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }
}

/// One predicate resolved against the table: column position and code
/// bounds.
struct Resolved {
    pos: usize,
    low_code: Value,
    high_code: Value,
    empty: bool,
}

/// The `planner.*` metric handles (always-live counters; registered only
/// through [`MultiExecutor::with_metrics`]).
struct PlannerObs {
    /// `planner.conjunctions` — conjunctions executed.
    conjunctions: Arc<Counter>,
    /// `planner.survivors_validated` — candidate rows validated against
    /// the non-driving predicates (the cost the planner minimises).
    survivors_validated: Arc<Counter>,
    /// `planner.agg.cache_hits` — grouped-aggregate digest trees served
    /// from the cache.
    agg_cache_hits: Arc<Counter>,
    /// `planner.agg.cache_invalidations` — cached trees discarded
    /// because a mutation bumped their shard's counter.
    agg_cache_invalidations: Arc<Counter>,
    /// `planner.driving.<column>` — driving-column choices, per column.
    driving: HashMap<String, Arc<Counter>>,
}

impl PlannerObs {
    fn register(registry: &MetricsRegistry, names: &[String]) -> Self {
        PlannerObs {
            conjunctions: registry.counter("planner.conjunctions"),
            survivors_validated: registry.counter("planner.survivors_validated"),
            agg_cache_hits: registry.counter("planner.agg.cache_hits"),
            agg_cache_invalidations: registry.counter("planner.agg.cache_invalidations"),
            driving: names
                .iter()
                .map(|name| {
                    let metric = format!("planner.driving.{}", pi_obs::sanitize_component(name));
                    (name.clone(), registry.counter(&metric))
                })
                .collect(),
        }
    }
}

/// A cached per-shard digest tree and the shard-mutation stamp it was
/// built at.
struct CacheSlot {
    stamp: u64,
    tree: Arc<DigestTree>,
}

/// The hot-range aggregate cache: per `(column, shard, width)` digest
/// trees, each stamped with the shard's mutation counter at build time.
///
/// **Invariant:** a slot is served only while its stamp equals the
/// shard's current [`ShardedColumn::shard_mutation_count`]. Writers bump
/// that counter *before* releasing the shard lock
/// ([`ShardedColumn::apply_shard_ops`]), and builds capture stamp and
/// live values under one lock acquisition
/// ([`ShardedColumn::digest_tree`]) — so once a write completes, no
/// later read can serve the pre-mutation digest.
pub struct AggregateCache {
    slots: Mutex<HashMap<(usize, usize, Value), CacheSlot>>,
}

impl AggregateCache {
    fn new() -> Self {
        AggregateCache {
            slots: Mutex::new(HashMap::new()),
        }
    }

    /// Number of cached per-shard trees.
    pub fn len(&self) -> usize {
        self.slots.lock().expect("aggregate cache poisoned").len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn get_or_build(
        &self,
        column: &ShardedColumn,
        pos: usize,
        shard: usize,
        width: Value,
        obs: Option<&PlannerObs>,
    ) -> Arc<DigestTree> {
        let key = (pos, shard, width);
        {
            let slots = self.slots.lock().expect("aggregate cache poisoned");
            if let Some(slot) = slots.get(&key) {
                if slot.stamp == column.shard_mutation_count(shard) {
                    if let Some(obs) = obs {
                        obs.agg_cache_hits.inc();
                    }
                    return Arc::clone(&slot.tree);
                }
            }
        }
        // Build outside the cache lock — the shard lock inside
        // `digest_tree` is the contended one. Concurrent builders may
        // both insert; each tree is exact for its stamp, and a stale
        // last-writer is caught by the stamp check on the next read.
        let (stamp, tree) = column.digest_tree(shard, width);
        let tree = Arc::new(tree);
        let mut slots = self.slots.lock().expect("aggregate cache poisoned");
        let prior = slots.insert(
            key,
            CacheSlot {
                stamp,
                tree: Arc::clone(&tree),
            },
        );
        if let Some(obs) = obs {
            if prior.is_some_and(|p| p.stamp != stamp) {
                obs.agg_cache_invalidations.inc();
            }
        }
        tree
    }
}

/// A grouped-aggregate query: `SUM/COUNT/MIN/MAX(column) WHERE column
/// BETWEEN low AND high GROUP BY bucket(width)`, buckets drawn on the
/// global code grid.
#[derive(Debug, Clone)]
pub struct GroupedQuery {
    /// The aggregated column.
    pub column: String,
    /// Lower bound (inclusive), in the column's key domain.
    pub low: ErasedKey,
    /// Upper bound (inclusive); `low > high` selects no buckets.
    pub high: ErasedKey,
    /// Grid bucket width, in code space; must be positive.
    pub bucket_width: Value,
}

impl GroupedQuery {
    /// Creates a grouped query.
    pub fn new(
        column: impl Into<String>,
        low: ErasedKey,
        high: ErasedKey,
        bucket_width: Value,
    ) -> Self {
        GroupedQuery {
            column: column.into(),
            low,
            high,
            bucket_width,
        }
    }
}

/// Executes conjunctions and grouped aggregates over a [`MultiTable`],
/// driving the inner shard-parallel [`Executor`] for the scan that pays
/// the paper's per-query indexing budget.
pub struct MultiExecutor {
    table: Arc<MultiTable>,
    exec: Executor,
    mode: PlanMode,
    agg_cache: AggregateCache,
    obs: Option<PlannerObs>,
}

impl MultiExecutor {
    /// Creates an executor with the default configuration.
    pub fn new(table: Arc<MultiTable>) -> Self {
        Self::with_config(table, ExecutorConfig::default())
    }

    /// Creates an executor with an explicit inner-executor configuration.
    pub fn with_config(table: Arc<MultiTable>, config: ExecutorConfig) -> Self {
        let exec = Executor::with_config(Arc::clone(table.inner()), config);
        MultiExecutor {
            table,
            exec,
            mode: PlanMode::default(),
            agg_cache: AggregateCache::new(),
            obs: None,
        }
    }

    /// Creates an executor whose `planner.*` metrics (conjunctions,
    /// survivors validated, driving-column choices, aggregate-cache hits
    /// and invalidations) — and the inner executor's `executor.*`
    /// metrics — land in `registry`.
    pub fn with_metrics(
        table: Arc<MultiTable>,
        config: ExecutorConfig,
        registry: Arc<MetricsRegistry>,
    ) -> Self {
        let obs = PlannerObs::register(&registry, table.names());
        let exec = Executor::with_metrics(Arc::clone(table.inner()), config, registry);
        MultiExecutor {
            table,
            exec,
            mode: PlanMode::default(),
            agg_cache: AggregateCache::new(),
            obs: Some(obs),
        }
    }

    /// Sets the planning mode (builder style). [`PlanMode::Planned`] is
    /// the default; [`PlanMode::FirstPredicate`] is the baseline the
    /// bench sweep measures the planner against.
    pub fn with_mode(mut self, mode: PlanMode) -> Self {
        self.mode = mode;
        self
    }

    /// The table this executor serves.
    pub fn table(&self) -> &Arc<MultiTable> {
        &self.table
    }

    /// The inner `u64` executor (driving scans and maintenance).
    pub fn inner(&self) -> &Executor {
        &self.exec
    }

    /// The grouped-aggregate cache (size introspection for tests and
    /// operators).
    pub fn aggregate_cache(&self) -> &AggregateCache {
        &self.agg_cache
    }

    /// Applies a batch of row mutations (see [`MultiTable::apply_rows`]).
    pub fn apply_rows(&self, mutations: &[RowMutation]) -> Vec<bool> {
        self.table.apply_rows(mutations)
    }

    /// Runs inner maintenance until every shard of every column has
    /// converged or `max_steps` is exhausted; returns steps performed.
    pub fn drive_to_convergence(&self, max_steps: usize) -> usize {
        self.exec.drive_to_convergence(max_steps)
    }

    /// Resolves and validates a conjunction's predicates against the row
    /// store.
    fn resolve(
        &self,
        store: &RowStore,
        predicates: &[Predicate],
    ) -> Result<Vec<Resolved>, EngineError> {
        if predicates.is_empty() {
            return Err(EngineError::EmptyConjunction);
        }
        predicates
            .iter()
            .map(|p| {
                let pos = self
                    .table
                    .position(&p.column)
                    .ok_or_else(|| EngineError::UnknownColumn(p.column.clone()))?;
                let column = &store.columns[pos];
                if p.low.domain() != column.domain() || p.high.domain() != column.domain() {
                    return Err(EngineError::DomainMismatch(p.column.clone()));
                }
                Ok(Resolved {
                    pos,
                    low_code: p.low.to_code(),
                    high_code: p.high.to_code(),
                    empty: p.low.cmp_same(&p.high) == std::cmp::Ordering::Greater,
                })
            })
            .collect()
    }

    /// The planner's decision inputs for each predicate, gathered
    /// lock-free from the inner columns' digests and ρ caches.
    fn gather_stats(&self, resolved: &[Resolved], predicates: &[Predicate]) -> Vec<PredicateStats> {
        resolved
            .iter()
            .zip(predicates)
            .map(|(r, p)| {
                let column = &self.table.inner.columns()[r.pos];
                PredicateStats {
                    column: p.column.clone(),
                    selectivity: column.estimate_selectivity(r.low_code, r.high_code),
                    rho: column.rho_estimate(),
                }
            })
            .collect()
    }

    /// Plans a conjunction without executing it: the driving choice and
    /// the per-predicate decision inputs behind it (for tests,
    /// `EXPLAIN`-style introspection and observability).
    pub fn plan(&self, predicates: &[Predicate]) -> Result<Plan, EngineError> {
        let store = self.table.store.read().expect("row store poisoned");
        let resolved = self.resolve(&store, predicates)?;
        Ok(choose_driving(self.gather_stats(&resolved, predicates)))
    }

    /// Executes a conjunction: every predicate must hold
    /// (`WHERE p₀ AND p₁ AND …`). Exact at every refinement stage and
    /// under concurrent row mutations; the result set never depends on
    /// predicate order or the planner's choice.
    pub fn execute(&self, predicates: &[Predicate]) -> Result<ConjunctionAnswer, EngineError> {
        let store = self.table.store.read().expect("row store poisoned");
        let resolved = self.resolve(&store, predicates)?;
        let zero_sums: Vec<Option<ErasedSum>> = resolved
            .iter()
            .map(|r| store.columns[r.pos].zero_sum())
            .collect();
        if let Some(obs) = &self.obs {
            obs.conjunctions.inc();
        }
        if resolved.iter().any(|r| r.empty) {
            // A typed-empty predicate empties the conjunction before any
            // scan: encoding could not represent `low > high` faithfully.
            return Ok(ConjunctionAnswer {
                count: 0,
                sums: zero_sums,
                driving: 0,
            });
        }
        let driving = match self.mode {
            PlanMode::FirstPredicate => 0,
            PlanMode::Planned => choose_driving(self.gather_stats(&resolved, predicates)).driving,
        };
        let d = &resolved[driving];
        // The driving scan runs through the normal shard-parallel path,
        // paying the paper's per-query δ of refinement work on the
        // driving column (and enjoying its covered-shard shortcuts).
        let driving_scan = self.exec.execute_batch(&[TableQuery::new(
            predicates[driving].column.clone(),
            d.low_code,
            d.high_code,
        )])?[0];
        // Stage 1: candidate rows from the row-aligned driving column,
        // selected in code space (for prefix-encoded strings this
        // over-selects; validation corrects it).
        let driving_column = &store.columns[d.pos];
        let mut candidates = Vec::new();
        for (row, &live) in store.live.iter().enumerate() {
            if live {
                let code = driving_column.code_at(row);
                if code >= d.low_code && code <= d.high_code {
                    candidates.push(row);
                }
            }
        }
        debug_assert_eq!(
            candidates.len() as u64,
            driving_scan.count,
            "row-store candidates must agree with the driving index scan"
        );
        // Stage 2: validate every candidate against every predicate over
        // the full typed keys — including the driving one, which keeps
        // prefix-code over-selection exact and makes the result set
        // independent of the planner's choice by construction.
        let mut count = 0u64;
        let mut sums = zero_sums;
        'rows: for &row in &candidates {
            for (r, p) in resolved.iter().zip(predicates) {
                if !store.columns[r.pos].matches(row, &p.low, &p.high) {
                    continue 'rows;
                }
            }
            count += 1;
            for (r, sum) in resolved.iter().zip(sums.iter_mut()) {
                store.columns[r.pos].add_to_sum(row, sum);
            }
        }
        if let Some(obs) = &self.obs {
            obs.survivors_validated.add(candidates.len() as u64);
            if let Some(counter) = obs.driving.get(&predicates[driving].column) {
                counter.inc();
            }
        }
        Ok(ConjunctionAnswer {
            count,
            sums,
            driving,
        })
    }

    /// Answers a grouped aggregate from the per-shard digest trees,
    /// serving cached trees where their shard-mutation stamps are still
    /// current and rebuilding the rest. Buckets are whole grid cells in
    /// code space (see the module docs); rows come back in ascending
    /// bucket order.
    ///
    /// # Panics
    /// Panics when `bucket_width` is zero.
    pub fn grouped(&self, query: &GroupedQuery) -> Result<Vec<GroupRow>, EngineError> {
        let store = self.table.store.read().expect("row store poisoned");
        let pos = self
            .table
            .position(&query.column)
            .ok_or_else(|| EngineError::UnknownColumn(query.column.clone()))?;
        let erased = &store.columns[pos];
        if query.low.domain() != erased.domain() || query.high.domain() != erased.domain() {
            return Err(EngineError::DomainMismatch(query.column.clone()));
        }
        if query.low.cmp_same(&query.high) == std::cmp::Ordering::Greater {
            return Ok(Vec::new());
        }
        let width = query.bucket_width;
        let (low_code, high_code) = (query.low.to_code(), query.high.to_code());
        let column = &self.table.inner.columns()[pos];
        // Buckets straddle shard boundaries: visit every shard the
        // *bucket-expanded* code range overlaps, not just the predicate's.
        let expanded_low = bucket_of(low_code, width).saturating_mul(width);
        let expanded_high = bucket_of(high_code, width)
            .saturating_mul(width)
            .saturating_add(width - 1);
        let mut merged = DigestTree::empty(width);
        for shard in column.overlapping(expanded_low, expanded_high) {
            let tree = self
                .agg_cache
                .get_or_build(column, pos, shard, width, self.obs.as_ref());
            merged.merge(&tree);
        }
        Ok(merged
            .cells_overlapping(low_code, high_code)
            .map(|(bucket, cell)| GroupRow {
                bucket,
                count: cell.count,
                sum: decode_cell_sum(erased, cell.sum, cell.count),
                min: erased.decode_code(cell.min),
                max: erased.decode_code(cell.max),
            })
            .collect())
    }
}

/// Decodes a code-space `(sum, count)` cell aggregate into the column's
/// key domain, honouring the capability gate: exact for `u64` (identity)
/// and `i64` (affine shift), `None` for `f64`/string.
fn decode_cell_sum(column: &ErasedColumn, sum: u128, count: u64) -> Option<ErasedSum> {
    match column {
        ErasedColumn::U64(_) => Some(ErasedSum::U64(sum)),
        ErasedColumn::I64(_) => {
            <i64 as OrderedKey>::decode_sum(ScanResult { sum, count }).map(ErasedSum::I64)
        }
        ErasedColumn::F64(_) | ErasedColumn::Str(_) => None,
    }
}
