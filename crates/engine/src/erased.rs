//! The minimal column-erased key handle: heterogeneous column sets in
//! one table.
//!
//! A [`TypedTable<K>`](crate::typed::TypedTable) is homogeneous — every
//! column shares the key domain `K`. Multi-column conjunctions need to
//! mix domains (`WHERE id BETWEEN .. AND temp BETWEEN .. AND name
//! BETWEEN ..`), so this module erases `K` behind two small enums:
//!
//! * [`ErasedKey`] — one key of any supported domain (`u64`, `i64`,
//!   `f64`, `String`), with its order-preserving code
//!   ([`ErasedKey::to_code`]) and the **exact** same-domain comparison
//!   ([`ErasedKey::cmp_same`]) the conjunction validator uses.
//! * [`ErasedColumn`] — a row-aligned vector of keys of one domain,
//!   storing the *full* typed keys. Candidate selection happens in code
//!   space (a superset for prefix-encoded strings, by encoding
//!   monotonicity); validation compares full keys, so prefix ties never
//!   need a side table here.
//!
//! Sums stay capability-gated exactly like the typed facade's digest
//! matrix: `u64`/`i64` sums are exact ([`ErasedSum`]), `f64` and
//! `String` columns serve `COUNT` (and grouped `MIN`/`MAX` where the
//! code decodes exactly) with `sum: None`.

use std::cmp::Ordering;

use pi_storage::encoding::OrderedKey;
use pi_storage::Value;

use crate::typed::TableKey;

/// The key domain of an erased key or column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyDomain {
    /// Unsigned 64-bit integers (identity encoding).
    U64,
    /// Signed 64-bit integers (sign-flip encoding).
    I64,
    /// IEEE-754 doubles (total-order encoding; NaN-free by policy).
    F64,
    /// Strings (8-byte prefix encoding; full keys kept for exactness).
    Str,
}

/// One key of any supported domain.
#[derive(Debug, Clone, PartialEq)]
pub enum ErasedKey {
    /// A `u64` key.
    U64(u64),
    /// An `i64` key.
    I64(i64),
    /// An `f64` key (must not be NaN, per the `f64` encoding policy).
    F64(f64),
    /// A string key.
    Str(String),
}

impl ErasedKey {
    /// The key's domain.
    pub fn domain(&self) -> KeyDomain {
        match self {
            ErasedKey::U64(_) => KeyDomain::U64,
            ErasedKey::I64(_) => KeyDomain::I64,
            ErasedKey::F64(_) => KeyDomain::F64,
            ErasedKey::Str(_) => KeyDomain::Str,
        }
    }

    /// The key's order-preserving code in the `u64` core. For `Str` this
    /// is the 8-byte prefix code: distinct strings can tie, so a code
    /// range is a *superset* of the typed range — callers correct it with
    /// [`ErasedKey::cmp_same`] validation.
    pub fn to_code(&self) -> u64 {
        match self {
            ErasedKey::U64(v) => TableKey::to_code(v),
            ErasedKey::I64(v) => TableKey::to_code(v),
            ErasedKey::F64(v) => TableKey::to_code(v),
            ErasedKey::Str(v) => TableKey::to_code(v),
        }
    }

    /// Exact key order within one domain.
    ///
    /// # Panics
    /// Panics on mixed domains — the table layer rejects cross-domain
    /// predicates before comparisons can happen.
    pub fn cmp_same(&self, other: &ErasedKey) -> Ordering {
        match (self, other) {
            (ErasedKey::U64(a), ErasedKey::U64(b)) => a.cmp(b),
            (ErasedKey::I64(a), ErasedKey::I64(b)) => a.cmp(b),
            (ErasedKey::F64(a), ErasedKey::F64(b)) => TableKey::key_cmp(a, b),
            (ErasedKey::Str(a), ErasedKey::Str(b)) => a.as_bytes().cmp(b.as_bytes()),
            (a, b) => panic!(
                "cross-domain key comparison: {:?} vs {:?}",
                a.domain(),
                b.domain()
            ),
        }
    }
}

/// A capability-gated exact sum over one erased column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErasedSum {
    /// Sum of `u64` keys.
    U64(u128),
    /// Sum of `i64` keys.
    I64(i128),
}

/// A row-aligned column of full typed keys, one domain per column.
#[derive(Debug, Clone)]
pub enum ErasedColumn {
    /// `u64` keys.
    U64(Vec<u64>),
    /// `i64` keys.
    I64(Vec<i64>),
    /// `f64` keys (NaN-free by the `f64` encoding policy).
    F64(Vec<f64>),
    /// Full string keys.
    Str(Vec<String>),
}

impl ErasedColumn {
    /// The column's domain.
    pub fn domain(&self) -> KeyDomain {
        match self {
            ErasedColumn::U64(_) => KeyDomain::U64,
            ErasedColumn::I64(_) => KeyDomain::I64,
            ErasedColumn::F64(_) => KeyDomain::F64,
            ErasedColumn::Str(_) => KeyDomain::Str,
        }
    }

    /// Whether the domain's code ranges can over-select (distinct keys
    /// tying on a code): `true` only for `Str`.
    pub fn prefix_encoded(&self) -> bool {
        matches!(self, ErasedColumn::Str(_))
    }

    /// Whether erased sums are exact in this domain.
    pub fn sum_supported(&self) -> bool {
        matches!(self, ErasedColumn::U64(_) | ErasedColumn::I64(_))
    }

    /// Number of rows (live and dead — row stores keep rows in place).
    pub fn len(&self) -> usize {
        match self {
            ErasedColumn::U64(v) => v.len(),
            ErasedColumn::I64(v) => v.len(),
            ErasedColumn::F64(v) => v.len(),
            ErasedColumn::Str(v) => v.len(),
        }
    }

    /// `true` when the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The key at `row`.
    pub fn key_at(&self, row: usize) -> ErasedKey {
        match self {
            ErasedColumn::U64(v) => ErasedKey::U64(v[row]),
            ErasedColumn::I64(v) => ErasedKey::I64(v[row]),
            ErasedColumn::F64(v) => ErasedKey::F64(v[row]),
            ErasedColumn::Str(v) => ErasedKey::Str(v[row].clone()),
        }
    }

    /// The key's code at `row` (no clone — the hot candidate-scan path).
    pub fn code_at(&self, row: usize) -> Value {
        match self {
            ErasedColumn::U64(v) => TableKey::to_code(&v[row]),
            ErasedColumn::I64(v) => TableKey::to_code(&v[row]),
            ErasedColumn::F64(v) => TableKey::to_code(&v[row]),
            ErasedColumn::Str(v) => TableKey::to_code(&v[row]),
        }
    }

    /// Exact typed test of `low ≤ key(row) ≤ high` (the conjunction
    /// validator; full-key order, so string prefix ties resolve exactly).
    ///
    /// # Panics
    /// Panics when the bounds' domain differs from the column's.
    pub fn matches(&self, row: usize, low: &ErasedKey, high: &ErasedKey) -> bool {
        match (self, low, high) {
            (ErasedColumn::U64(v), ErasedKey::U64(lo), ErasedKey::U64(hi)) => {
                (lo..=hi).contains(&&v[row])
            }
            (ErasedColumn::I64(v), ErasedKey::I64(lo), ErasedKey::I64(hi)) => {
                (lo..=hi).contains(&&v[row])
            }
            (ErasedColumn::F64(v), ErasedKey::F64(lo), ErasedKey::F64(hi)) => {
                TableKey::key_cmp(&v[row], lo) != Ordering::Less
                    && TableKey::key_cmp(&v[row], hi) != Ordering::Greater
            }
            (ErasedColumn::Str(v), ErasedKey::Str(lo), ErasedKey::Str(hi)) => {
                let key = v[row].as_bytes();
                key >= lo.as_bytes() && key <= hi.as_bytes()
            }
            _ => panic!(
                "predicate domain {:?}/{:?} does not match column domain {:?}",
                low.domain(),
                high.domain(),
                self.domain()
            ),
        }
    }

    /// Appends a key.
    ///
    /// # Panics
    /// Panics when the key's domain differs from the column's.
    pub fn push(&mut self, key: ErasedKey) {
        match (self, key) {
            (ErasedColumn::U64(v), ErasedKey::U64(k)) => v.push(k),
            (ErasedColumn::I64(v), ErasedKey::I64(k)) => v.push(k),
            (ErasedColumn::F64(v), ErasedKey::F64(k)) => v.push(k),
            (ErasedColumn::Str(v), ErasedKey::Str(k)) => v.push(k),
            (col, key) => panic!(
                "key domain {:?} does not match column domain {:?}",
                key.domain(),
                col.domain()
            ),
        }
    }

    /// Replaces the key at `row`, returning the previous key.
    ///
    /// # Panics
    /// Panics when the key's domain differs from the column's.
    pub fn replace(&mut self, row: usize, key: ErasedKey) -> ErasedKey {
        match (self, key) {
            (ErasedColumn::U64(v), ErasedKey::U64(k)) => {
                ErasedKey::U64(std::mem::replace(&mut v[row], k))
            }
            (ErasedColumn::I64(v), ErasedKey::I64(k)) => {
                ErasedKey::I64(std::mem::replace(&mut v[row], k))
            }
            (ErasedColumn::F64(v), ErasedKey::F64(k)) => {
                ErasedKey::F64(std::mem::replace(&mut v[row], k))
            }
            (ErasedColumn::Str(v), ErasedKey::Str(k)) => {
                ErasedKey::Str(std::mem::replace(&mut v[row], k))
            }
            (col, key) => panic!(
                "key domain {:?} does not match column domain {:?}",
                key.domain(),
                col.domain()
            ),
        }
    }

    /// Adds the key at `row` into `sum` (capability-gated: `None` stays
    /// `None` for domains without exact sums).
    pub fn add_to_sum(&self, row: usize, sum: &mut Option<ErasedSum>) {
        match (self, &mut *sum) {
            (ErasedColumn::U64(v), Some(ErasedSum::U64(acc))) => *acc += v[row] as u128,
            (ErasedColumn::I64(v), Some(ErasedSum::I64(acc))) => *acc += v[row] as i128,
            _ => {}
        }
    }

    /// The domain's zero sum, `None` where sums are unsupported.
    pub fn zero_sum(&self) -> Option<ErasedSum> {
        match self {
            ErasedColumn::U64(_) => Some(ErasedSum::U64(0)),
            ErasedColumn::I64(_) => Some(ErasedSum::I64(0)),
            ErasedColumn::F64(_) | ErasedColumn::Str(_) => None,
        }
    }

    /// The row-order codes of every key (the encoded column the inner
    /// `u64` engine indexes).
    pub fn codes(&self) -> Vec<Value> {
        match self {
            ErasedColumn::U64(v) => v.iter().map(TableKey::to_code).collect(),
            ErasedColumn::I64(v) => v.iter().map(TableKey::to_code).collect(),
            ErasedColumn::F64(v) => v.iter().map(TableKey::to_code).collect(),
            ErasedColumn::Str(v) => v.iter().map(TableKey::to_code).collect(),
        }
    }

    /// Decodes a code back into the column's key domain — exact for
    /// `u64`/`i64`/`f64` (injective encodings), `None` for `Str` (an
    /// 8-byte prefix does not determine the full key). Grouped-aggregate
    /// `MIN`/`MAX` cells use this, so string groups serve `COUNT` only.
    pub fn decode_code(&self, code: Value) -> Option<ErasedKey> {
        match self {
            ErasedColumn::U64(_) => Some(ErasedKey::U64(code)),
            ErasedColumn::I64(_) => Some(ErasedKey::I64(<i64 as OrderedKey>::decode(code))),
            ErasedColumn::F64(_) => Some(ErasedKey::F64(<f64 as OrderedKey>::decode(code))),
            ErasedColumn::Str(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_preserve_each_domain_order() {
        let i = ErasedColumn::I64(vec![-5, 0, 7]);
        let f = ErasedColumn::F64(vec![-1.5, 0.0, 2.25]);
        for col in [&i, &f] {
            let codes: Vec<u64> = (0..col.len()).map(|r| col.code_at(r)).collect();
            let mut sorted = codes.clone();
            sorted.sort_unstable();
            assert_eq!(codes, sorted, "{:?}", col.domain());
        }
    }

    #[test]
    fn string_prefix_codes_tie_but_full_keys_do_not() {
        let col = ErasedColumn::Str(vec![
            "progressive".into(),
            "progressive-index".into(),
            "quicksort".into(),
        ]);
        assert_eq!(col.code_at(0), col.code_at(1), "8-byte prefix ties");
        // Code-range candidate selection over-selects…
        let low = ErasedKey::Str("progressive-a".into());
        let high = ErasedKey::Str("progressive-z".into());
        assert!((low.to_code()..=high.to_code()).contains(&col.code_at(0)));
        // …and exact validation corrects it.
        assert!(!col.matches(0, &low, &high));
        assert!(col.matches(1, &low, &high));
        assert!(!col.matches(2, &low, &high));
    }

    #[test]
    fn sums_are_capability_gated() {
        let u = ErasedColumn::U64(vec![3, 4]);
        let mut sum = u.zero_sum();
        u.add_to_sum(0, &mut sum);
        u.add_to_sum(1, &mut sum);
        assert_eq!(sum, Some(ErasedSum::U64(7)));

        let i = ErasedColumn::I64(vec![-10, 4]);
        let mut sum = i.zero_sum();
        i.add_to_sum(0, &mut sum);
        i.add_to_sum(1, &mut sum);
        assert_eq!(sum, Some(ErasedSum::I64(-6)));

        for col in [
            ErasedColumn::F64(vec![1.0]),
            ErasedColumn::Str(vec!["a".into()]),
        ] {
            let mut sum = col.zero_sum();
            assert_eq!(sum, None);
            col.add_to_sum(0, &mut sum);
            assert_eq!(sum, None);
        }
    }

    #[test]
    fn decode_is_exact_for_injective_domains_only() {
        let f = ErasedColumn::F64(vec![-3.75]);
        assert_eq!(f.decode_code(f.code_at(0)), Some(ErasedKey::F64(-3.75)));
        let i = ErasedColumn::I64(vec![-42]);
        assert_eq!(i.decode_code(i.code_at(0)), Some(ErasedKey::I64(-42)));
        let s = ErasedColumn::Str(vec!["hello".into()]);
        assert_eq!(s.decode_code(s.code_at(0)), None);
    }

    #[test]
    #[should_panic(expected = "does not match column domain")]
    fn cross_domain_predicates_rejected() {
        let col = ErasedColumn::U64(vec![1]);
        let _ = col.matches(0, &ErasedKey::F64(0.0), &ErasedKey::F64(1.0));
    }
}
