//! Whole-stack observability acceptance: one `MetricsRegistry` wired
//! through table shards, executor, worker pool and server front-end, a
//! skewed-string serving run on top, and assertions that the snapshot
//! carries the convergence story — non-zero ρ per shard, tie-break hits,
//! per-phase timings and cost-model error — and exports as schema-valid
//! JSON and Prometheus text. Clock-dependent assertions are gated on
//! `pi_obs::ENABLED`, so the suite passes on both feature legs (`obs`
//! on: histograms populated; off: histograms empty, structural counters
//! still live).

use std::sync::Arc;

use progressive_indexes::engine::typed::{TypedColumnSpec, TypedExecutor, TypedQuery, TypedTable};
use progressive_indexes::engine::{
    ColumnSpec, Executor, ExecutorConfig, Table, TableQuery, TableServer,
};
use progressive_indexes::index::budget::BudgetPolicy;
use progressive_indexes::obs::{validate_snapshot_json, MetricsRegistry};
use progressive_indexes::sched::ServerConfig;
use progressive_indexes::workloads::{domains, Distribution};

const ROWS: usize = 40_000;
const SHARDS: usize = 4;
const QUERIES: usize = 200;
const BATCH: usize = 10;

/// Builds a skewed-string typed stack around `registry` and serves
/// `QUERIES` hot-prefix range queries through it.
fn serve_skewed_strings(registry: &Arc<MetricsRegistry>) {
    let table = Arc::new(
        TypedTable::builder()
            .metrics(Arc::clone(registry))
            .column(
                TypedColumnSpec::new("s", domains::string_data(Distribution::Skewed, ROWS, 11))
                    .with_shards(SHARDS)
                    .with_policy(BudgetPolicy::FixedDelta(0.1)),
            )
            .build(),
    );
    let executor = TypedExecutor::with_metrics(
        table,
        ExecutorConfig {
            worker_threads: 2,
            maintenance_steps: 2,
            background_maintenance: false,
        },
        Arc::clone(registry),
    );
    let queries = domains::string_ranges(Distribution::Skewed, QUERIES, 13);
    for chunk in queries.chunks(BATCH) {
        let batch: Vec<TypedQuery<String>> = chunk
            .iter()
            .map(|(low, high)| TypedQuery::new("s", low.clone(), high.clone()))
            .collect();
        executor.execute_batch(&batch).expect("known column");
    }
}

#[test]
fn skewed_string_run_populates_the_metric_namespace() {
    let registry = Arc::new(MetricsRegistry::new());
    serve_skewed_strings(&registry);
    let snap = registry.snapshot();

    // Convergence gauges: one ρ per shard, every one non-zero after 200
    // refining queries, none above 1.
    let rhos: Vec<(&str, f64)> = snap.gauges_with_prefix("engine.rho.s.").collect();
    assert_eq!(rhos.len(), SHARDS, "one ρ gauge per shard: {rhos:?}");
    for (name, rho) in &rhos {
        assert!(
            *rho > 0.0 && *rho <= 1.0,
            "{name} must be refined into (0, 1], got {rho}"
        );
    }

    // The hot shared prefix forces boundary tie-breaks against the
    // side table.
    let tie_hits = snap.counter("engine.tie_break_hits").expect("registered");
    assert!(tie_hits > 0, "skewed strings must hit the tie-break path");

    // Executor accounting: every batch and query counted.
    assert_eq!(
        snap.counter("executor.batches"),
        Some((QUERIES / BATCH) as u64)
    );
    assert_eq!(snap.counter("executor.queries"), Some(QUERIES as u64));

    // Core indexing work: refinement stepped and moved δ·N bytes.
    assert!(snap.counter("core.s.refine_steps").expect("registered") > 0);
    assert!(snap.counter("core.s.bytes_moved").expect("registered") > 0);

    // Pool traffic landed in the same registry.
    assert!(snap.counter("sched.pool.jobs").expect("registered") > 0);

    // Clock-dependent metrics: per-phase timings and cost-model error
    // are populated with `obs` on and compiled out (empty) with it off.
    let scan = snap
        .histogram("executor.phase.scan_ns")
        .expect("registered");
    let cost = snap.histogram("core.s.cost_error_pm").expect("registered");
    if progressive_indexes::obs::ENABLED {
        assert_eq!(
            scan.count,
            (QUERIES / BATCH) as u64,
            "one scan timing per batch"
        );
        assert!(scan.p50() > 0, "scans take non-zero time");
        assert!(cost.count > 0, "cost-model error must be sampled");
        // Samples are capped at 1000‰; the quantile reads the √2 bucket
        // *upper bound*, so the bound shows as ≤ 1024.
        assert!(cost.p99() <= 1024, "per-mille error is bounded");
    } else {
        assert_eq!(scan.count, 0, "obs off: no clocks, no timings");
        assert_eq!(cost.count, 0, "obs off: cost error needs a clock");
    }

    // Exports: schema-valid JSON and Prometheus text from the same
    // snapshot.
    let json = snap.to_json();
    validate_snapshot_json(&json).unwrap_or_else(|e| panic!("{e}\n{json}"));
    let prom = snap.to_prometheus();
    assert!(prom.contains("# TYPE engine_rho_s_0 gauge"));
    assert!(prom.contains("# TYPE executor_phase_scan_ns histogram"));
}

#[test]
fn server_front_end_shares_the_stack_registry() {
    // The untyped stack with the server on top: table, executor, pool
    // and server all report into one explicitly-shared registry.
    let registry = Arc::new(MetricsRegistry::new());
    let table = Arc::new(
        Table::builder()
            .metrics(Arc::clone(&registry))
            .column(
                ColumnSpec::new("a", (0..ROWS as u64).rev().collect())
                    .with_shards(SHARDS)
                    .with_policy(BudgetPolicy::FixedDelta(0.25)),
            )
            .build(),
    );
    let executor = Arc::new(Executor::with_metrics(
        Arc::clone(&table),
        ExecutorConfig {
            worker_threads: 2,
            maintenance_steps: 2,
            background_maintenance: false,
        },
        Arc::clone(&registry),
    ));
    let server =
        TableServer::with_metrics(executor, ServerConfig::default(), Arc::clone(&registry));
    let mut tickets = Vec::new();
    for i in 0..20u64 {
        let batch = vec![TableQuery::new("a", i * 100, i * 100 + 500)];
        tickets.push(server.submit(batch).expect("server accepting"));
    }
    for ticket in tickets {
        ticket.wait().expect("known column");
    }
    let stats = server.stats();
    server.shutdown();

    let snap = registry.snapshot();
    // Every layer reported into the same snapshot, and the server's
    // typed stats agree with its registry counters.
    assert_eq!(snap.counter("server.accepted"), Some(stats.accepted));
    assert_eq!(stats.accepted, 20);
    assert_eq!(snap.counter("server.served_requests"), Some(20));
    assert!(snap.counter("executor.batches").expect("registered") > 0);
    assert!(snap.counter("sched.pool.jobs").expect("registered") > 0);
    assert!(snap.gauges_with_prefix("engine.rho.a.").count() == SHARDS);
    if progressive_indexes::obs::ENABLED {
        // Queue wait is recorded once per accepted submission (they may
        // coalesce into fewer engine runs, so don't compare with
        // executed_batches).
        let waits = snap.histogram("server.queue_wait_ns").expect("registered");
        assert_eq!(waits.count, stats.accepted);
    }
    validate_snapshot_json(&snap.to_json()).expect("schema holds");
}
