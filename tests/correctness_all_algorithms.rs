//! Workspace-level correctness tests: every indexing technique — the four
//! progressive indexes, the five adaptive baselines and the two reference
//! points — must return exactly the same answers as a scan-based oracle on
//! every workload pattern and data distribution.

use std::sync::Arc;

use pi_core::budget::BudgetPolicy;
use pi_core::cost_model::CostConstants;
use pi_core::testing::ReferenceIndex;
use pi_experiments::registry::AlgorithmId;
use pi_storage::Column;
use pi_workloads::skyserver::{self, SkyServerConfig};
use pi_workloads::{data, patterns, Pattern, RangeQuery, WorkloadSpec};

const N: usize = 30_000;
const QUERIES: usize = 60;

fn check_workload(column: Arc<Column>, queries: &[RangeQuery], context: &str) {
    let reference = ReferenceIndex::new(&column);
    for algorithm in AlgorithmId::ALL {
        let mut index = algorithm.build(
            Arc::clone(&column),
            BudgetPolicy::FixedDelta(0.25),
            CostConstants::synthetic(),
        );
        for (i, q) in queries.iter().enumerate() {
            let got = index.query(q.low, q.high);
            let expected = reference.query(q.low, q.high);
            assert_eq!(
                (got.sum, got.count),
                (expected.sum, expected.count),
                "{context}/{algorithm}: query #{i} [{}, {}]",
                q.low,
                q.high
            );
        }
    }
}

#[test]
fn all_algorithms_agree_on_uniform_data_all_patterns() {
    let column = Arc::new(Column::from_vec(data::uniform_random(N, 11)));
    for pattern in Pattern::ALL {
        let queries = patterns::generate(pattern, &WorkloadSpec::range(N as u64, QUERIES));
        check_workload(Arc::clone(&column), &queries, &format!("uniform/{pattern}"));
    }
}

#[test]
fn all_algorithms_agree_on_skewed_data_all_patterns() {
    let column = Arc::new(Column::from_vec(data::skewed(N, 12)));
    for pattern in Pattern::ALL {
        let queries = patterns::generate(pattern, &WorkloadSpec::range(N as u64, QUERIES));
        check_workload(Arc::clone(&column), &queries, &format!("skewed/{pattern}"));
    }
}

#[test]
fn all_algorithms_agree_on_point_queries() {
    let column = Arc::new(Column::from_vec(data::uniform_random(N, 13)));
    for pattern in Pattern::POINT_QUERY_PATTERNS {
        let queries = patterns::generate(pattern, &WorkloadSpec::point(N as u64, QUERIES));
        check_workload(Arc::clone(&column), &queries, &format!("point/{pattern}"));
    }
}

#[test]
fn all_algorithms_agree_on_the_skyserver_workload() {
    let generated = skyserver::generate(SkyServerConfig {
        column_size: N,
        query_count: QUERIES,
        domain: N as u64,
        ..SkyServerConfig::tiny()
    });
    let column = Arc::new(Column::from_vec(generated.data));
    check_workload(column, &generated.queries, "skyserver");
}

#[test]
fn all_algorithms_agree_on_duplicate_heavy_data() {
    // Only 16 distinct values: exercises the duplicate-handling paths of
    // pivots, bucket boundaries and crack positions.
    let values: Vec<u64> = (0..N as u64).map(|i| i % 16).collect();
    let column = Arc::new(Column::from_vec(values));
    let queries: Vec<RangeQuery> = (0..16u64)
        .flat_map(|v| [RangeQuery::new(v, v), RangeQuery::new(v, (v + 3).min(15))])
        .collect();
    check_workload(column, &queries, "duplicates");
}

#[test]
fn all_algorithms_handle_extreme_and_empty_ranges() {
    let column = Arc::new(Column::from_vec(data::uniform_random(5_000, 14)));
    let reference = ReferenceIndex::new(&column);
    let edge_queries = [
        RangeQuery::new(0, 0),
        RangeQuery::new(0, u64::MAX),
        RangeQuery::new(4_999, 4_999),
        RangeQuery::new(5_000, u64::MAX), // nothing qualifies
        RangeQuery::new(2_500, 2_499),    // reversed → empty
    ];
    for algorithm in AlgorithmId::ALL {
        let mut index = algorithm.build(
            Arc::clone(&column),
            BudgetPolicy::FixedDelta(1.0),
            CostConstants::synthetic(),
        );
        for q in &edge_queries {
            let got = index.query(q.low, q.high);
            let expected = if q.low > q.high {
                pi_storage::ScanResult::EMPTY
            } else {
                reference.query(q.low, q.high)
            };
            assert_eq!(
                (got.sum, got.count),
                (expected.sum, expected.count),
                "{algorithm}: [{}, {}]",
                q.low,
                q.high
            );
        }
    }
}

#[test]
fn all_algorithms_handle_single_element_and_constant_columns() {
    for values in [vec![7u64], vec![42u64; 1_000]] {
        let column = Arc::new(Column::from_vec(values));
        let reference = ReferenceIndex::new(&column);
        for algorithm in AlgorithmId::ALL {
            let mut index = algorithm.build(
                Arc::clone(&column),
                BudgetPolicy::FixedDelta(0.5),
                CostConstants::synthetic(),
            );
            for (low, high) in [(0, 100), (7, 7), (42, 42), (43, 1_000)] {
                let got = index.query(low, high);
                let expected = reference.query(low, high);
                assert_eq!(
                    (got.sum, got.count),
                    (expected.sum, expected.count),
                    "{algorithm} on column of len {}: [{low}, {high}]",
                    column.len()
                );
            }
        }
    }
}
