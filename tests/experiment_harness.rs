//! Smoke tests of the experiment harness at a tiny scale: every
//! table/figure regenerator must run end-to-end and produce plausibly
//! shaped output (the full-size runs are driven by the `pi-experiments`
//! binaries and `cargo bench`).

use pi_experiments::cost_model_validation::{self, BudgetMode};
use pi_experiments::registry::AlgorithmId;
use pi_experiments::synthetic_grid::{self, Block, GridMetric};
use pi_experiments::{delta_sweep, skyserver_comparison, Scale};

// Large enough that the paper's relative orderings (e.g. full index
// beating full scan on cumulative time) emerge even in a debug build,
// small enough that the whole smoke test stays fast.
const TINY: Scale = Scale {
    column_size: 15_000,
    query_count: 200,
};

#[test]
fn delta_sweep_reproduces_figure7_shape() {
    let rows = delta_sweep::run(TINY, &[0.05, 1.0]);
    assert_eq!(rows.len(), 8);
    // Figure 7d: cumulative time with δ = 1 is no worse than ~the δ = 0.05
    // cumulative time for every algorithm at this scale — but at minimum
    // the sweep must produce finite, positive measurements.
    for row in &rows {
        assert!(row.metrics.cumulative_seconds > 0.0);
        assert!(row.metrics.first_query_seconds > 0.0);
    }
    let table = delta_sweep::to_table(&rows);
    assert!(table.to_csv().lines().count() > 8);
}

#[test]
fn table2_reproduces_the_headline_comparison() {
    let comparison = skyserver_comparison::run(
        TINY,
        &[
            AlgorithmId::FullScan,
            AlgorithmId::FullIndex,
            AlgorithmId::AdaptiveAdaptive,
            AlgorithmId::ProgressiveQuicksort,
        ],
    );
    let get = |id: AlgorithmId| {
        comparison
            .results
            .iter()
            .find(|(a, _)| *a == id)
            .map(|(_, m)| *m)
            .expect("algorithm present")
    };
    let fs = get(AlgorithmId::FullScan);
    let fi = get(AlgorithmId::FullIndex);
    let aa = get(AlgorithmId::AdaptiveAdaptive);
    let pq = get(AlgorithmId::ProgressiveQuicksort);

    // Shape of Table 2: the full index pays the most up front but wins on
    // cumulative time; the full scan is the cheapest first query; adaptive
    // indexing's first query is far more expensive than progressive
    // indexing's; progressive indexing converges, adaptive does not.
    assert!(fi.first_query_seconds > fs.first_query_seconds);
    assert!(fi.cumulative_seconds < fs.cumulative_seconds);
    assert!(aa.first_query_seconds > pq.first_query_seconds);
    assert_eq!(fi.convergence_query, Some(1));
    assert_eq!(fs.convergence_query, None);
    assert_eq!(aa.convergence_query, None);
    assert!(pq.convergence_query.is_some());

    let fig10 = skyserver_comparison::figure10_series(
        &comparison,
        &[
            AlgorithmId::ProgressiveQuicksort,
            AlgorithmId::AdaptiveAdaptive,
        ],
    );
    assert_eq!(fig10.row_count(), 2 * TINY.query_count);
}

#[test]
fn cost_model_validation_covers_both_budget_modes() {
    for mode in [BudgetMode::FixedDelta, BudgetMode::Adaptive] {
        let series = cost_model_validation::run(TINY, mode);
        assert_eq!(series.len(), 4);
        for s in &series {
            assert_eq!(s.records.len(), TINY.query_count);
            assert!(s.records[0].predicted_seconds.is_some(), "{}", s.algorithm);
        }
        let summary = cost_model_validation::summary_table(&series);
        assert_eq!(summary.row_count(), 4);
    }
}

#[test]
fn synthetic_grid_produces_tables_3_to_5() {
    let cells = synthetic_grid::run(
        Scale {
            column_size: 8_000,
            query_count: 25,
        },
        &[Block::UniformRandom, Block::PointQuery],
    );
    let expected = (Block::UniformRandom.patterns().len() + Block::PointQuery.patterns().len())
        * synthetic_grid::GRID_ALGORITHMS.len();
    assert_eq!(cells.len(), expected);
    for metric in [
        GridMetric::FirstQuery,
        GridMetric::Cumulative,
        GridMetric::Robustness,
    ] {
        let table = synthetic_grid::to_table(&cells, metric);
        assert_eq!(
            table.row_count(),
            Block::UniformRandom.patterns().len() + Block::PointQuery.patterns().len()
        );
    }
}
