//! Property-based tests: for arbitrary columns and arbitrary query
//! sequences, every indexing technique must agree with the scan-based
//! oracle, and the structural invariants of the underlying data structures
//! must hold.

use std::sync::Arc;

use proptest::prelude::*;

use pi_core::budget::BudgetPolicy;
use pi_core::cost_model::CostConstants;
use pi_core::testing::ReferenceIndex;
use pi_cracking::crack::crack_in_two;
use pi_cracking::CrackedColumn;
use pi_experiments::registry::AlgorithmId;
use pi_storage::{sorted, Column};
use pi_workloads::{patterns, Pattern, WorkloadSpec};

/// Strategy: a small column of values within a bounded domain (duplicates
/// likely), plus a sequence of query bounds over the same domain.
fn column_and_queries() -> impl Strategy<Value = (Vec<u64>, Vec<(u64, u64)>)> {
    let domain = 2_000u64;
    (
        prop::collection::vec(0..domain, 1..400),
        prop::collection::vec((0..domain, 0..domain), 1..25),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every algorithm returns exactly the oracle's answer on every query,
    /// regardless of the data and the query sequence.
    #[test]
    fn every_algorithm_matches_the_oracle((values, raw_queries) in column_and_queries()) {
        let column = Arc::new(Column::from_vec(values));
        let reference = ReferenceIndex::new(&column);
        for algorithm in AlgorithmId::ALL {
            let mut index = algorithm.build(
                Arc::clone(&column),
                BudgetPolicy::FixedDelta(0.5),
                CostConstants::synthetic(),
            );
            for &(a, b) in &raw_queries {
                let (low, high) = if a <= b { (a, b) } else { (b, a) };
                let got = index.query(low, high);
                let expected = reference.query(low, high);
                prop_assert_eq!(
                    (got.sum, got.count),
                    (expected.sum, expected.count),
                    "{} on [{}, {}]", algorithm, low, high
                );
            }
        }
    }

    /// Progressive indexes keep returning oracle answers after they have
    /// converged (the index rebuild must preserve the multiset of values).
    #[test]
    fn converged_progressive_indexes_stay_correct(values in prop::collection::vec(0..5_000u64, 1..300)) {
        let column = Arc::new(Column::from_vec(values));
        let reference = ReferenceIndex::new(&column);
        for algorithm in AlgorithmId::PROGRESSIVE {
            let mut index = algorithm.build(
                Arc::clone(&column),
                BudgetPolicy::FixedDelta(1.0),
                CostConstants::synthetic(),
            );
            // δ = 1 converges within a bounded number of queries.
            let mut guard = 0;
            while !index.is_converged() {
                index.query(0, 2_500);
                guard += 1;
                prop_assert!(guard < 200, "{} did not converge", algorithm);
            }
            for (low, high) in [(0, 0), (100, 4_000), (4_999, 5_000), (0, u64::MAX)] {
                let got = index.query(low, high);
                let expected = reference.query(low, high);
                prop_assert_eq!((got.sum, got.count), (expected.sum, expected.count));
            }
        }
    }

    /// `crack_in_two` partitions correctly and is a permutation.
    #[test]
    fn crack_in_two_partitions_and_permutes(
        mut values in prop::collection::vec(0..1_000u64, 0..500),
        pivot in 0..1_000u64,
    ) {
        let mut expected = values.clone();
        expected.sort_unstable();
        let n = values.len();
        let result = crack_in_two(&mut values, 0, n, pivot);
        prop_assert!(values[..result.split].iter().all(|&v| v < pivot));
        prop_assert!(values[result.split..].iter().all(|&v| v >= pivot));
        values.sort_unstable();
        prop_assert_eq!(values, expected);
    }

    /// Arbitrary crack sequences never change query answers and keep the
    /// cracker column a permutation of the original.
    #[test]
    fn cracked_column_preserves_answers(
        values in prop::collection::vec(0..3_000u64, 1..300),
        pivots in prop::collection::vec(0..3_000u64, 0..20),
        query in (0..3_000u64, 0..3_000u64),
    ) {
        let column = Column::from_vec(values.clone());
        let reference = ReferenceIndex::new(&column);
        let mut cracked = CrackedColumn::new(&column);
        let (a, b) = query;
        let (low, high) = if a <= b { (a, b) } else { (b, a) };
        for &p in &pivots {
            cracked.crack_exact(p);
            let answer = cracked.answer(low, high);
            let expected = reference.query(low, high);
            prop_assert_eq!(answer.result, expected);
        }
        let mut reordered = cracked.data().to_vec();
        reordered.sort_unstable();
        let mut original = values;
        original.sort_unstable();
        prop_assert_eq!(reordered, original);
    }

    /// Binary-search helpers agree with a linear definition on sorted data.
    #[test]
    fn sorted_bounds_match_linear_scan(
        mut values in prop::collection::vec(0..500u64, 0..300),
        key in 0..500u64,
    ) {
        values.sort_unstable();
        let lower = sorted::lower_bound(&values, key);
        let upper = sorted::upper_bound(&values, key);
        prop_assert_eq!(lower, values.iter().filter(|&&v| v < key).count());
        prop_assert_eq!(upper, values.iter().filter(|&&v| v <= key).count());
    }

    /// Workload generators always produce in-domain, well-formed queries.
    #[test]
    fn workload_patterns_stay_in_domain(
        domain in 100..50_000u64,
        count in 1..200usize,
        seed in any::<u64>(),
    ) {
        let spec = WorkloadSpec::range(domain, count).with_seed(seed);
        for pattern in Pattern::ALL {
            let queries = patterns::generate(pattern, &spec);
            prop_assert_eq!(queries.len(), count);
            for q in &queries {
                prop_assert!(q.low <= q.high, "{}: {:?}", pattern, q);
                prop_assert!(q.high < domain, "{}: {:?}", pattern, q);
            }
        }
    }
}
