//! Convergence and budget-policy tests for the progressive indexing
//! algorithms: every algorithm must converge deterministically under every
//! budget policy, keep answering correctly after convergence, and the
//! phase lifecycle must only ever move forward.

use std::sync::Arc;

use pi_core::budget::BudgetPolicy;
use pi_core::cost_model::{CostConstants, CostModel};
use pi_core::result::Phase;
use pi_core::testing::{random_column, ReferenceIndex, TestRng};
use pi_core::RangeIndex;
use pi_experiments::registry::AlgorithmId;
use pi_storage::Column;

const N: usize = 25_000;
const DOMAIN: u64 = 50_000;

fn policies(n: usize) -> Vec<(&'static str, BudgetPolicy)> {
    let model = CostModel::new(CostConstants::synthetic(), n);
    vec![
        ("fixed-delta-0.1", BudgetPolicy::FixedDelta(0.1)),
        ("fixed-delta-1.0", BudgetPolicy::FixedDelta(1.0)),
        (
            "fixed-budget-0.2-scan",
            BudgetPolicy::fixed_scan_fraction(&model, 0.2),
        ),
        (
            "adaptive-0.2-scan",
            BudgetPolicy::adaptive_scan_fraction(&model, 0.2),
        ),
    ]
}

fn drive_to_convergence(
    index: &mut Box<dyn RangeIndex>,
    reference: &ReferenceIndex,
    context: &str,
) -> usize {
    let mut rng = TestRng::new(0xD1CE);
    let max_queries = 20_000;
    for q in 1..=max_queries {
        let low = rng.below(DOMAIN);
        let high = low + rng.below(DOMAIN / 10).max(1);
        let got = index.query(low, high);
        let expected = reference.query(low, high);
        assert_eq!(
            (got.sum, got.count),
            (expected.sum, expected.count),
            "{context}: query #{q} [{low}, {high}]"
        );
        if index.is_converged() {
            return q;
        }
    }
    panic!("{context}: did not converge within {max_queries} queries");
}

#[test]
fn every_progressive_algorithm_converges_under_every_policy() {
    let column = Arc::new(random_column(N, DOMAIN, 0xABCD));
    let reference = ReferenceIndex::new(&column);
    for algorithm in AlgorithmId::PROGRESSIVE {
        for (policy_name, policy) in policies(N) {
            let mut index =
                algorithm.build(Arc::clone(&column), policy, CostConstants::synthetic());
            let queries = drive_to_convergence(
                &mut index,
                &reference,
                &format!("{algorithm}/{policy_name}"),
            );
            assert!(queries >= 1);

            // Converged indexes must stay correct and report a stable
            // status.
            let status = index.status();
            assert_eq!(status.phase, Phase::Converged, "{algorithm}/{policy_name}");
            assert_eq!(status.fraction_indexed, 1.0, "{algorithm}/{policy_name}");
            let expected = reference.query(1_000, 9_999);
            let got = index.query(1_000, 9_999);
            assert_eq!((got.sum, got.count), (expected.sum, expected.count));
        }
    }
}

#[test]
fn higher_fixed_delta_never_converges_later() {
    let column = Arc::new(random_column(N, DOMAIN, 0xBEEF));
    let reference = ReferenceIndex::new(&column);
    for algorithm in AlgorithmId::PROGRESSIVE {
        let mut convergence = Vec::new();
        for delta in [0.05, 0.25, 1.0] {
            let mut index = algorithm.build(
                Arc::clone(&column),
                BudgetPolicy::FixedDelta(delta),
                CostConstants::synthetic(),
            );
            convergence.push(drive_to_convergence(
                &mut index,
                &reference,
                &format!("{algorithm}/delta-{delta}"),
            ));
        }
        assert!(
            convergence[0] >= convergence[1] && convergence[1] >= convergence[2],
            "{algorithm}: convergence counts {convergence:?} not monotone in δ"
        );
    }
}

#[test]
fn phases_only_move_forward() {
    let column = Arc::new(random_column(N, DOMAIN, 0xCAFE));
    for algorithm in AlgorithmId::PROGRESSIVE {
        let mut index = algorithm.build(
            Arc::clone(&column),
            BudgetPolicy::FixedDelta(0.2),
            CostConstants::synthetic(),
        );
        let mut rng = TestRng::new(3);
        let mut last_phase = Phase::Creation;
        for _ in 0..2_000 {
            let low = rng.below(DOMAIN);
            let result = index.query(low, low + 500);
            assert!(
                result.phase >= last_phase,
                "{algorithm}: phase moved backwards from {last_phase} to {}",
                result.phase
            );
            last_phase = result.phase;
            if index.is_converged() {
                break;
            }
        }
        assert!(index.is_converged(), "{algorithm} should converge");
    }
}

#[test]
fn convergence_is_deterministic_for_identical_inputs() {
    let column = Arc::new(random_column(N, DOMAIN, 0xF00D));
    for algorithm in AlgorithmId::PROGRESSIVE {
        let run = |col: Arc<Column>| {
            let mut index = algorithm.build(
                col,
                BudgetPolicy::FixedDelta(0.3),
                CostConstants::synthetic(),
            );
            let mut rng = TestRng::new(77);
            let mut count = 0usize;
            while !index.is_converged() {
                let low = rng.below(DOMAIN);
                index.query(low, low + 1_000);
                count += 1;
                assert!(count < 10_000);
            }
            count
        };
        let a = run(Arc::clone(&column));
        let b = run(Arc::clone(&column));
        assert_eq!(
            a, b,
            "{algorithm}: convergence query count must be deterministic"
        );
    }
}

#[test]
fn empty_columns_start_converged_and_answer_empty() {
    let column = Arc::new(Column::from_vec(Vec::new()));
    for algorithm in AlgorithmId::PROGRESSIVE {
        let mut index = algorithm.build(
            Arc::clone(&column),
            BudgetPolicy::FixedDelta(0.5),
            CostConstants::synthetic(),
        );
        let result = index.query(0, u64::MAX);
        assert_eq!(result.count, 0, "{algorithm}");
        assert_eq!(result.sum, 0, "{algorithm}");
        assert!(index.is_converged(), "{algorithm}");
    }
}

#[test]
fn adaptive_budget_keeps_indexing_ops_bounded_per_query() {
    // Under the adaptive budget, per-query indexing work is bounded by
    // δ ≤ 1, i.e. never more than one full pass of the phase's unit work.
    let column = Arc::new(random_column(N, DOMAIN, 0x1234));
    let model = CostModel::new(CostConstants::synthetic(), N);
    for algorithm in AlgorithmId::PROGRESSIVE {
        let mut index = algorithm.build(
            Arc::clone(&column),
            BudgetPolicy::adaptive_scan_fraction(&model, 0.2),
            CostConstants::synthetic(),
        );
        let mut rng = TestRng::new(5);
        for _ in 0..200 {
            let low = rng.below(DOMAIN);
            let result = index.query(low, low + 2_000);
            assert!(
                result.delta <= 1.0 + 1e-9,
                "{algorithm}: delta {} out of range",
                result.delta
            );
            // Indexing work per query can never exceed a small multiple of
            // the column size (one full pass of creation or refinement).
            assert!(
                result.indexing_ops <= 4 * N as u64,
                "{algorithm}: {} indexing ops in one query",
                result.indexing_ops
            );
            if index.is_converged() {
                break;
            }
        }
    }
}
