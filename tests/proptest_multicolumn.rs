//! Property-based oracle tests for the multi-column layer: conjunctions
//! and grouped aggregates must match sorted-`Vec` ground truth for
//! **all four algorithms**, at **arbitrary refinement stages**, under
//! **interleaved row mutations**, and over a **heterogeneous**
//! u64/f64/string table.
//!
//! Every check also runs the conjunction with its predicates reversed:
//! the result set must be independent of predicate order (and hence of
//! the planner's driving choice) by construction.

use std::sync::Arc;

use proptest::prelude::*;

use pi_core::decision::Algorithm;
use pi_engine::{
    AlgorithmChoice, ErasedColumn, ErasedKey, ErasedSum, ExecutorConfig, GroupedQuery,
    MultiColumnSpec, MultiExecutor, MultiTable, Predicate, RowMutation,
};

/// Foreground-only inner executors: refinement happens exactly when the
/// test drives it, so "arbitrary refinement stage" is under the
/// strategy's control.
fn foreground() -> ExecutorConfig {
    ExecutorConfig {
        worker_threads: 2,
        maintenance_steps: 0,
        background_maintenance: false,
    }
}

fn two_column_table(a: &[u64], b: &[u64], algorithm: Algorithm) -> Arc<MultiTable> {
    Arc::new(
        MultiTable::builder()
            .column(
                MultiColumnSpec::new("a", ErasedColumn::U64(a.to_vec()))
                    .with_shards(3)
                    .with_choice(AlgorithmChoice::Fixed(algorithm)),
            )
            .column(
                MultiColumnSpec::new("b", ErasedColumn::U64(b.to_vec()))
                    .with_shards(3)
                    .with_choice(AlgorithmChoice::Fixed(algorithm)),
            )
            .build(),
    )
}

/// The mirrored ground truth: plain rows plus a live mask, mutated in
/// lockstep with the table.
struct Mirror {
    rows: Vec<(u64, u64)>,
    live: Vec<bool>,
}

impl Mirror {
    fn new(a: &[u64], b: &[u64]) -> Self {
        Mirror {
            rows: a.iter().copied().zip(b.iter().copied()).collect(),
            live: vec![true; a.len()],
        }
    }

    fn conjunction(&self, ra: (u64, u64), rb: (u64, u64)) -> (u64, u128, u128) {
        let (mut count, mut sum_a, mut sum_b) = (0u64, 0u128, 0u128);
        for (&(va, vb), &live) in self.rows.iter().zip(&self.live) {
            if live && va >= ra.0 && va <= ra.1 && vb >= rb.0 && vb <= rb.1 {
                count += 1;
                sum_a += va as u128;
                sum_b += vb as u128;
            }
        }
        (count, sum_a, sum_b)
    }

    /// Applies the op-coded mutation derived from one query tuple and
    /// mirrors it; returns the table-side mutation.
    fn derive_mutation(&mut self, op: u64, v1: u64, v2: u64) -> RowMutation {
        match op % 3 {
            0 => {
                self.rows.push((v1, v2));
                self.live.push(true);
                RowMutation::Insert(vec![ErasedKey::U64(v1), ErasedKey::U64(v2)])
            }
            1 => {
                let row = (v1 as usize) % self.rows.len();
                if self.live[row] {
                    self.live[row] = false;
                }
                RowMutation::Delete(row)
            }
            _ => {
                let row = (v1 as usize) % self.rows.len();
                if self.live[row] {
                    self.rows[row] = (v2, v1);
                }
                RowMutation::Update {
                    row,
                    keys: vec![ErasedKey::U64(v2), ErasedKey::U64(v1)],
                }
            }
        }
    }
}

/// Query bounds drawn by [`conjunction_world`]: `(a_low, a_high,
/// b_low, b_high)`, ordered in the test.
type QueryScript = Vec<(u64, u64, u64, u64)>;

/// Mutation/refinement steps drawn by [`conjunction_world`]:
/// `(op_word, v1, v2)` — `op_word` encodes the refinement slice,
/// whether to mutate, and the mutation kind.
type StepScript = Vec<(u64, u64, u64)>;

/// Strategy: two row-aligned columns, a [`QueryScript`] of conjunction
/// bounds, and a [`StepScript`] of interleaved refinement + mutation
/// steps.
fn conjunction_world() -> impl Strategy<Value = (Vec<u64>, Vec<u64>, QueryScript, StepScript)> {
    let domain = 3_000u64;
    (
        prop::collection::vec(0..domain, 20..160),
        prop::collection::vec(0..domain, 20..160),
        prop::collection::vec((0..domain, 0..domain, 0..domain, 0..domain), 1..8),
        prop::collection::vec((0..8u64, 0..domain, 0..domain), 1..8),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// For every algorithm: conjunction answers equal the mirror's at
    /// every refinement stage, under interleaved mutations, in both
    /// predicate orders.
    #[test]
    fn conjunctions_match_the_oracle_for_every_algorithm(
        (a, b, queries, script) in conjunction_world()
    ) {
        let rows = a.len().min(b.len());
        let (a, b) = (&a[..rows], &b[..rows]);
        for algorithm in Algorithm::ALL {
            let table = two_column_table(a, b, algorithm);
            let exec = MultiExecutor::with_config(Arc::clone(&table), foreground());
            let mut mirror = Mirror::new(a, b);
            for (i, &(qa0, qa1, qb0, qb1)) in queries.iter().enumerate() {
                // Interleave: an arbitrary refinement slice and (for
                // matching script steps) a row mutation before the query.
                if let Some(&(op, v1, v2)) = script.get(i) {
                    exec.drive_to_convergence((op % 8) as usize * 3);
                    let mutation = mirror.derive_mutation(op, v1, v2);
                    exec.apply_rows(std::slice::from_ref(&mutation));
                }
                let ra = (qa0.min(qa1), qa0.max(qa1));
                let rb = (qb0.min(qb1), qb0.max(qb1));
                let fwd = [
                    Predicate::between_u64("a", ra.0, ra.1),
                    Predicate::between_u64("b", rb.0, rb.1),
                ];
                let rev = [fwd[1].clone(), fwd[0].clone()];
                let x = exec.execute(&fwd).unwrap();
                let y = exec.execute(&rev).unwrap();
                let (count, sum_a, sum_b) = mirror.conjunction(ra, rb);
                prop_assert_eq!(
                    (x.count, x.sums[0], x.sums[1]),
                    (count, Some(ErasedSum::U64(sum_a)), Some(ErasedSum::U64(sum_b))),
                    "{} fwd a={:?} b={:?}", algorithm, ra, rb
                );
                prop_assert_eq!(
                    (y.count, y.sums[0], y.sums[1]),
                    (count, Some(ErasedSum::U64(sum_b)), Some(ErasedSum::U64(sum_a))),
                    "{} rev a={:?} b={:?}", algorithm, ra, rb
                );
            }
            // And once more at full convergence.
            exec.drive_to_convergence(usize::MAX);
            prop_assert!(table.inner().is_converged());
            let last = mirror.conjunction((0, u64::MAX), (0, u64::MAX));
            let full = exec.execute(&[
                Predicate::between_u64("a", 0, u64::MAX),
                Predicate::between_u64("b", 0, u64::MAX),
            ]).unwrap();
            prop_assert_eq!(full.count, last.0, "{} full scan", algorithm);
        }
    }

    /// For every algorithm: grouped aggregates (SUM/COUNT/MIN/MAX GROUP
    /// BY bucket) equal a sorted-Vec fold of the live multiset, through
    /// cache reuse and mutation-driven invalidation.
    #[test]
    fn grouped_aggregates_match_the_oracle_for_every_algorithm(
        (values, width_seed, script) in (
            prop::collection::vec(0..4_096u64, 10..200),
            1..512u64,
            prop::collection::vec((0..8u64, 0..4_096u64, 0..4_096u64), 1..6),
        )
    ) {
        for algorithm in Algorithm::ALL {
            let table = Arc::new(
                MultiTable::builder()
                    .column(
                        MultiColumnSpec::new("v", ErasedColumn::U64(values.clone()))
                            .with_shards(3)
                            .with_choice(AlgorithmChoice::Fixed(algorithm)),
                    )
                    .build(),
            );
            let exec = MultiExecutor::with_config(Arc::clone(&table), foreground());
            let mut live: Vec<(u64, bool)> = values.iter().map(|&v| (v, true)).collect();
            for &(op, v1, v2) in &script {
                // Query → mutate → query: the second read must observe
                // the mutation (the cache-stamp invariant), and every
                // read must match the fold of the live multiset.
                let (low, high) = (v1.min(v2), v1.max(v2));
                let width = width_seed + op;
                for _ in 0..2 {
                    let got = exec.grouped(&GroupedQuery::new(
                        "v",
                        ErasedKey::U64(low),
                        ErasedKey::U64(high),
                        width,
                    )).unwrap();
                    let want = grouped_fold(&live, low, high, width);
                    prop_assert_eq!(got.len(), want.len(), "{} w={}", algorithm, width);
                    for (g, (bucket, count, sum, min, max)) in got.iter().zip(&want) {
                        prop_assert_eq!(
                            (g.bucket, g.count, g.sum, g.min.clone(), g.max.clone()),
                            (
                                *bucket,
                                *count,
                                Some(ErasedSum::U64(*sum)),
                                Some(ErasedKey::U64(*min)),
                                Some(ErasedKey::U64(*max)),
                            ),
                            "{} [{}, {}] w={}", algorithm, low, high, width
                        );
                    }
                    // Mutate between the two reads of the first pass.
                    match op % 3 {
                        0 => {
                            live.push((v1, true));
                            exec.apply_rows(&[RowMutation::Insert(vec![ErasedKey::U64(v1)])]);
                        }
                        1 => {
                            let row = (v1 as usize) % live.len();
                            if live[row].1 {
                                live[row].1 = false;
                            }
                            exec.apply_rows(&[RowMutation::Delete(row)]);
                        }
                        _ => {
                            let row = (v1 as usize) % live.len();
                            if live[row].1 {
                                live[row].0 = v2;
                            }
                            exec.apply_rows(&[RowMutation::Update {
                                row,
                                keys: vec![ErasedKey::U64(v2)],
                            }]);
                        }
                    }
                }
                exec.drive_to_convergence((op % 5) as usize * 7);
            }
        }
    }

    /// Heterogeneous u64/f64/string tables: conjunctions across all
    /// three domains stay oracle-exact at arbitrary refinement stages
    /// and under interleaved mutations, in both predicate orders.
    #[test]
    fn heterogeneous_conjunctions_match_the_oracle(
        (seeds, queries, script) in (
            prop::collection::vec((0..1_000u64, 0..1_000u64, 0..1_000u64), 20..120),
            prop::collection::vec((0..1_000u64, 0..1_000u64, 0..1_000u64, 0..1_000u64), 1..6),
            prop::collection::vec((0..8u64, 0..1_000u64, 0..1_000u64), 1..6),
        )
    ) {
        // Map u64 seeds into the three domains. The string map reuses
        // one hot 11-byte prefix for ~half the rows, so distinct keys
        // tie on the 8-byte code and validation must untie them.
        let ids: Vec<u64> = seeds.iter().map(|s| s.0).collect();
        let floats: Vec<f64> = seeds.iter().map(|s| float_key(s.1)).collect();
        let strings: Vec<String> = seeds.iter().map(|s| string_key(s.2)).collect();
        let table = Arc::new(
            MultiTable::builder()
                .column(MultiColumnSpec::new("id", ErasedColumn::U64(ids.clone())).with_shards(3))
                .column(MultiColumnSpec::new("t", ErasedColumn::F64(floats.clone())).with_shards(3))
                .column(MultiColumnSpec::new("s", ErasedColumn::Str(strings.clone())).with_shards(3))
                .build(),
        );
        let exec = MultiExecutor::with_config(Arc::clone(&table), foreground());
        let mut rows: Vec<(u64, f64, String, bool)> = (0..ids.len())
            .map(|r| (ids[r], floats[r], strings[r].clone(), true))
            .collect();
        for (i, &(q0, q1, q2, q3)) in queries.iter().enumerate() {
            if let Some(&(op, v1, v2)) = script.get(i) {
                exec.drive_to_convergence((op % 6) as usize * 5);
                match op % 3 {
                    0 => {
                        rows.push((v1, float_key(v2), string_key(v1 ^ v2), true));
                        exec.apply_rows(&[RowMutation::Insert(vec![
                            ErasedKey::U64(v1),
                            ErasedKey::F64(float_key(v2)),
                            ErasedKey::Str(string_key(v1 ^ v2)),
                        ])]);
                    }
                    1 => {
                        let row = (v1 as usize) % rows.len();
                        if rows[row].3 {
                            rows[row].3 = false;
                        }
                        exec.apply_rows(&[RowMutation::Delete(row)]);
                    }
                    _ => {
                        let row = (v1 as usize) % rows.len();
                        if rows[row].3 {
                            rows[row] = (v2, float_key(v1), string_key(v2), true);
                        }
                        exec.apply_rows(&[RowMutation::Update {
                            row,
                            keys: vec![
                                ErasedKey::U64(v2),
                                ErasedKey::F64(float_key(v1)),
                                ErasedKey::Str(string_key(v2)),
                            ],
                        }]);
                    }
                }
            }
            let ir = (q0.min(q1), q0.max(q1));
            let fr = (float_key(q2.min(q3)), float_key(q2.max(q3)));
            let (s0, s1) = (string_key(q1), string_key(q2));
            let sr = if s0 <= s1 { (s0, s1) } else { (s1, s0) };
            let predicates = [
                Predicate::new("id", ErasedKey::U64(ir.0), ErasedKey::U64(ir.1)),
                Predicate::new("t", ErasedKey::F64(fr.0), ErasedKey::F64(fr.1)),
                Predicate::new("s", ErasedKey::Str(sr.0.clone()), ErasedKey::Str(sr.1.clone())),
            ];
            let reversed: Vec<Predicate> = predicates.iter().rev().cloned().collect();
            let want = rows
                .iter()
                .filter(|(id, t, s, alive)| {
                    *alive
                        && (ir.0..=ir.1).contains(id)
                        && *t >= fr.0
                        && *t <= fr.1
                        && s.as_str() >= sr.0.as_str()
                        && s.as_str() <= sr.1.as_str()
                })
                .count() as u64;
            let x = exec.execute(&predicates).unwrap();
            let y = exec.execute(&reversed).unwrap();
            prop_assert_eq!(x.count, want, "id={:?} t={:?} s={:?}", ir, fr, sr);
            prop_assert_eq!(y.count, want, "reversed");
            prop_assert_eq!(x.sums[1], None, "f64 sums stay gated off");
            prop_assert_eq!(x.sums[2], None, "string sums stay gated off");
        }
    }
}

/// `f64` key of a seed: affine map into `[-500, 500)`, exact in both
/// directions for integer seeds this small.
fn float_key(seed: u64) -> f64 {
    seed as f64 - 500.0
}

/// String key of a seed: roughly half the keys share an 11-byte hot
/// prefix (one 8-byte code, many distinct keys), the rest are short and
/// distinct.
fn string_key(seed: u64) -> String {
    if seed.is_multiple_of(2) {
        format!("progressive{:04}", seed % 1_000)
    } else {
        format!("k{:03}", seed % 1_000)
    }
}

/// Sorted-`Vec` ground truth for a grouped aggregate over the live
/// multiset: whole-bucket semantics on the global grid.
fn grouped_fold(
    live: &[(u64, bool)],
    low: u64,
    high: u64,
    width: u64,
) -> Vec<(u64, u64, u128, u64, u64)> {
    use std::collections::BTreeMap;
    let mut cells: BTreeMap<u64, (u64, u128, u64, u64)> = BTreeMap::new();
    for &(v, alive) in live {
        if alive {
            let cell = cells.entry(v / width).or_insert((0, 0, u64::MAX, u64::MIN));
            cell.0 += 1;
            cell.1 += v as u128;
            cell.2 = cell.2.min(v);
            cell.3 = cell.3.max(v);
        }
    }
    cells
        .into_iter()
        .filter(|&(bucket, _)| bucket >= low / width && bucket <= high / width)
        .map(|(bucket, (count, sum, min, max))| (bucket, count, sum, min, max))
        .collect()
}
